#include "pvfs/client.h"

#include <cassert>
#include <cstring>

#include "fault/injector.h"
#include "sim/trace.h"

namespace pvfsib::pvfs {

namespace {
std::string client_name(u32 id) { return "client" + std::to_string(id); }
}  // namespace

// Completion state shared by every copy of an IoHandle.
struct IoHandle::State {
  bool done = false;
  IoResult result;
  TimePoint start = TimePoint::origin();  // for the stalled-queue error path
  std::vector<IoCallback> callbacks;
};

// Per-operation bookkeeping shared by the per-server round chains.
struct Client::OpState {
  OpenFile file;
  IoOptions opts;
  bool is_write = false;
  IoCallback done;
  TimePoint start = TimePoint::origin();   // when the caller issued the op
  TimePoint launch = TimePoint::origin();  // after op-wide registration
  std::vector<u32> iod_ids;                // per sub-request: primary iod
  // Per sub-request: the *logical stripe server* id (ServerSubRequest::
  // server). partition() skips servers that receive no data, so the dense
  // sub-request index is not the stripe id — shadow handles, version
  // allocation and staleness-map keys must all use the stripe id.
  std::vector<u32> stripes;
  std::vector<std::vector<Round>> rounds;  // per sub-request: its rounds
  // Per sub-request: the ordered physical replicas serving it (primary
  // first). A single-entry set equal to iod_ids[k] when unreplicated.
  std::vector<std::vector<u32>> replica_sets;
  bool replicated = false;  // file carries a replica table (factor > 1)
  u32 quorum = 1;           // write acks needed to settle a round
  // One chain of rounds per target iod, flow-controlled by `window`.
  struct Chain {
    size_t next_issue = 0;  // index of the next round to put on the wire
    u32 inflight = 0;       // issued rounds whose reply has not arrived
    bool stalled = false;   // wire cleared but the window was full
    TimePoint blocked_since = TimePoint::origin();
    // Slot-reuse guard: round k lands in staging slot k mod window, so
    // round k may only be issued once round k - window settled. Under
    // recovery rounds can settle out of order; `floor` is the length of
    // the consecutive settled prefix and issuance requires
    // next_issue < floor + window. With in-order settling (the only
    // possibility when the fault plane is off) this is exactly the
    // inflight < window check.
    std::vector<bool> settled_rounds;
    size_t floor = 0;
    // Which replica of the chain's set currently serves reads; read
    // failover advances it and the chain's remaining rounds follow.
    u32 replica = 0;
  };
  std::vector<Chain> chains;
  core::OgrOutcome prereg;  // op-wide buffer registration
  u64 total_bytes = 0;
  u64 logical_end = 0;  // for manager size bookkeeping on writes
  u32 window = 1;       // outstanding-round limit (pipeline_depth)
  u32 pending = 0;      // chains still running
  TimePoint max_end = TimePoint::origin();
  Status status;
  bool failed = false;
  IoPhases phases;
  u32 retries = 0;    // recovery retries accumulated across all rounds
  u32 failovers = 0;  // read-failover hops accumulated across all rounds

  // --- Caching tier (populated only when CacheParams::enabled) ----------
  // Copy of the request, kept so the completion hooks can gather/overlay
  // the op's bytes against user memory.
  core::ListIoRequest creq;
  bool wb_flush = false;         // write-back flush: skip the write hooks
  bool cache_insertable = false; // read miss whose bytes re-enter the cache
  // Read: per-stripe write-seq snapshot at issue. The entry is only
  // inserted (and only validates later) if the authority's seq still
  // matches — any write submitted or completed during the flight makes
  // the bytes uninsertable/unservable.
  std::map<u32, u64> cache_seq;
  // Read: minimum header version each stripe's rounds reported serving.
  // The min (not max) is the honest tag: a round served by a legitimately
  // stale replica must produce an entry that fails the version check, not
  // one that borrows a newer round's tag.
  std::map<u32, u64> serve_ver;
};

Client::Client(u32 id, const ModelConfig& cfg, sim::Engine& engine,
               ib::Fabric& fabric, const MetaRegistry& registry,
               std::vector<Iod*> iods, Stats* stats, fault::Injector* faults)
    : id_(id),
      cfg_(cfg),
      engine_(engine),
      fabric_(fabric),
      iods_(std::move(iods)),
      stats_(stats),
      faults_(faults),
      hca_(client_name(id), as_, cfg.reg, stats),
      cache_(hca_),
      registrar_(cache_, cfg.os, core::OgrConfig{}, stats),
      xfer_(fabric, cfg.mem),
      meta_(hca_, engine, stats, faults, &registry, cfg.migration),
      ccache_(cfg.cache, stats) {
  if (cfg.cache.enabled) {
    // Route lease revocations bus -> MetaClient -> cache. Setting the sink
    // before any attach_lease_bus call is what makes the subscription
    // happen at all; cache-off clients leave the bus unobserved.
    meta_.set_lease_sink(
        [this](const LeaseRevoke& rv) { ccache_.on_revoke(rv); });
  }
  ep_.hca = &hca_;
  ep_.cache = &cache_;
  ep_.registrar = &registrar_;
  ep_.bounce_size = cfg.pvfs.fast_rdma_buffer;
  ep_.bounce_addr = as_.alloc(ep_.bounce_size);
  ib::RegAttempt reg = hca_.register_memory(ep_.bounce_addr, ep_.bounce_size);
  assert(reg.ok());
  ep_.bounce_key = reg.key;
  rtt_.resize(iods_.size());
}

// --- Metadata ----------------------------------------------------------

MetaReply Client::meta_roundtrip(const MetaRequest& rq) {
  MetaClient::Outcome o = meta_.call(rq, max(now_, engine_.now()));
  now_ = max(now_, o.done);
  return std::move(o.reply);
}

Result<OpenFile> Client::create(const std::string& name) {
  return create(name, cfg_.pvfs.stripe_size,
                static_cast<u32>(iods_.size()));
}

Result<OpenFile> Client::create(const std::string& name, u64 stripe_size,
                                u32 iod_count, u32 base_iod) {
  assert(iod_count <= iods_.size());
  MetaRequest rq;
  rq.op = MetaOp::kCreate;
  rq.name = name;
  rq.stripe_size = stripe_size;
  rq.iod_count = iod_count;
  rq.base_iod = base_iod;
  rq.replication_factor = cfg_.replication.factor;
  MetaReply r = meta_roundtrip(rq);
  if (!r.status.is_ok()) return r.status;
  if (ccache_.enabled()) ccache_.put_attr(r.meta, now_);
  return OpenFile{r.meta};
}

Result<OpenFile> Client::open(const std::string& name) {
  if (ccache_.enabled()) {
    // Attribute-cache short-circuit: a valid entry answers the open with
    // no metadata round-trip and no simulated time.
    if (const FileMeta* m =
            ccache_.lookup_attr(name, max(now_, engine_.now()))) {
      return OpenFile{*m};
    }
  }
  MetaRequest rq;
  rq.op = MetaOp::kOpen;
  rq.name = name;
  MetaReply r = meta_roundtrip(rq);
  if (!r.status.is_ok()) return r.status;
  if (ccache_.enabled()) ccache_.put_attr(r.meta, now_);
  return OpenFile{r.meta};
}

Result<FileMeta> Client::stat(const std::string& name) {
  if (ccache_.enabled()) {
    if (const FileMeta* m =
            ccache_.lookup_attr(name, max(now_, engine_.now()))) {
      return *m;
    }
  }
  // stat is an open-shaped metadata round-trip.
  MetaRequest rq;
  rq.op = MetaOp::kStat;
  rq.name = name;
  MetaReply r = meta_roundtrip(rq);
  if (!r.status.is_ok()) return r.status;
  if (ccache_.enabled()) ccache_.put_attr(r.meta, now_);
  return r.meta;
}

Status Client::remove(const std::string& name) {
  Result<FileMeta> meta = stat(name);
  if (!meta.is_ok()) return meta.status();
  MetaRequest rq;
  rq.op = MetaOp::kRemove;
  rq.name = name;
  Status r = meta_roundtrip(rq).status;
  PVFSIB_RETURN_IF_ERROR(r);
  if (ccache_.enabled()) {
    // The manager's kRemoved lease revoke (when a bus is attached) already
    // swept every subscribed cache, ours included, synchronously inside
    // the round-trip. This local pass is the bus-less fallback — both
    // calls are idempotent, so double delivery drops nothing twice.
    ccache_.invalidate_name(name);
    ccache_.on_revoke(LeaseRevoke{LeaseRevokeReason::kRemoved, 0, 1, name,
                                  meta.value().handle});
  }
  // The manager that served the remove tells every iod to unlink its stripe
  // file; the client returns once all acknowledgements are in.
  Manager& mgr = meta_.route(name);
  TimePoint done = now_;
  for (Iod* iod : iods_) {
    const TimePoint at = fabric_.send_control(
        mgr.hca(), iod->hca(), cfg_.pvfs.request_msg_bytes, now_,
        ib::ControlKind::kRequest);
    Duration unlink = iod->remove_file(meta.value().handle);
    if (meta.value().replication_factor > 1) {
      // Backup copies live under per-stripe shadow handles.
      for (u32 k = 0; k < meta.value().iod_count; ++k) {
        unlink += iod->remove_file(backup_handle(meta.value().handle, k));
      }
    }
    done = max(done, fabric_.send_control(
                         iod->hca(), mgr.hca(), cfg_.pvfs.reply_msg_bytes,
                         at + unlink, ib::ControlKind::kReply));
  }
  advance_to(done);
  return Status::ok();
}

// --- Round splitting ----------------------------------------------------

std::vector<Client::Round> Client::split_rounds(
    const core::ServerSubRequest& sub, u64 max_pairs, u64 max_bytes) {
  std::vector<Round> out;
  Round cur;
  size_t mi = 0;
  u64 mconsumed = 0;

  auto take_mem = [&](Round& dst, u64 want) {
    while (want > 0) {
      assert(mi < sub.mem.size());
      const core::MemSegment& m = sub.mem[mi];
      const u64 n = std::min(m.length - mconsumed, want);
      const u64 addr = m.addr + mconsumed;
      if (!dst.mem.empty() &&
          dst.mem.back().addr + dst.mem.back().length == addr) {
        dst.mem.back().length += n;
      } else {
        dst.mem.push_back({addr, n});
      }
      mconsumed += n;
      want -= n;
      if (mconsumed == m.length) {
        ++mi;
        mconsumed = 0;
      }
    }
  };
  auto flush = [&] {
    if (!cur.accesses.empty()) {
      out.push_back(std::move(cur));
      cur = Round{};
    }
  };

  for (const Extent& a : sub.file) {
    u64 off = a.offset;
    u64 left = a.length;
    while (left > 0) {
      if (cur.accesses.size() >= max_pairs || cur.bytes >= max_bytes) flush();
      const u64 n = std::min(left, max_bytes - cur.bytes);
      cur.accesses.push_back({off, n});
      take_mem(cur, n);
      cur.bytes += n;
      off += n;
      left -= n;
    }
  }
  flush();
  return out;
}

// --- Operation setup -----------------------------------------------------

void Client::start_op(const OpenFile& file, const core::ListIoRequest& req,
                      const IoOptions& opts, TimePoint start, bool is_write,
                      IoCallback done, bool wb_flush) {
  Status v = core::validate(req);
  if (!v.is_ok()) {
    done(IoResult{v, 0, start, start});
    return;
  }
  if (ccache_.enabled() && !wb_flush) {
    if (!is_write) {
      if (serve_cached_read(file, req, start, done)) return;
    } else if (ccache_.write_back()) {
      stage_write_back(file, req, start, done);
      return;
    }
  }
  auto op = std::make_shared<OpState>();
  op->file = file;
  op->opts = opts;
  op->is_write = is_write;
  op->done = std::move(done);
  op->start = max(start, engine_.now());
  op->total_bytes = req.bytes();
  op->window = std::max<u32>(1, cfg_.pipeline_depth);
  for (const Extent& e : req.file) {
    op->logical_end = std::max(op->logical_end, e.end());
  }

  // Optimistic Group Registration runs once per operation on the *user's*
  // buffer list (Section 4.3); the per-server slices later hit the pin-down
  // cache. Pack-only transfers (and small hybrids on the Fast-RDMA path)
  // skip registration entirely.
  const auto& pol = op->opts.policy;
  const bool needs_reg =
      pol.scheme == core::XferScheme::kMultipleMessage ||
      pol.scheme == core::XferScheme::kRdmaGatherScatter ||
      (pol.scheme == core::XferScheme::kHybrid &&
       op->total_bytes > pol.hybrid_threshold);
  if (needs_reg) {
    const core::RegStrategy strat =
        pol.scheme == core::XferScheme::kMultipleMessage
            ? core::RegStrategy::kIndividual
            : pol.reg_strategy;
    op->prereg =
        opts.allocation_hint_len > 0
            ? registrar_.acquire_declared(
                  req.mem,
                  Extent{opts.allocation_hint_addr, opts.allocation_hint_len})
            : registrar_.acquire(req.mem, strat);
    if (!op->prereg.ok()) {
      op->done(IoResult{op->prereg.status, 0, op->start, op->start});
      return;
    }
    if (stats_ != nullptr) {
      stats_->add("ogr.prereg_ns", op->prereg.cost.as_ns());
    }
    op->phases.registration += op->prereg.cost;
  }
  op->launch = op->start + op->prereg.cost;

  const core::StripeMap map(file.meta.stripe_size, file.meta.iod_count);
  const auto subs = core::partition(req, map);
  op->replicated =
      file.meta.replication_factor > 1 && !file.meta.replicas.empty();
  if (op->replicated) {
    const u32 q = file.meta.replication_factor;
    op->quorum = cfg_.replication.write_quorum == 0
                     ? q
                     : std::min(cfg_.replication.write_quorum, q);
  }
  for (const auto& sub : subs) {
    // Logical stripe server -> physical iod, honoring the file's base.
    const u32 primary =
        (file.meta.base_iod + sub.server) % static_cast<u32>(iods_.size());
    op->iod_ids.push_back(primary);
    op->stripes.push_back(sub.server);
    if (op->replicated) {
      assert(sub.server < file.meta.replicas.size());
      const std::vector<u32>& set = file.meta.replicas[sub.server];
      assert(!set.empty() && set[0] == primary);
      op->replica_sets.push_back(set);
    } else {
      op->replica_sets.push_back({primary});
    }
    op->rounds.push_back(split_rounds(sub, cfg_.pvfs.max_list_pairs,
                                      cfg_.pvfs.staging_buffer));
  }
  op->chains.resize(subs.size());
  for (size_t k = 0; k < subs.size(); ++k) {
    op->chains[k].settled_rounds.resize(op->rounds[k].size(), false);
  }
  if (op->replicated && !is_write) {
    // Replica-aware placement: start each chain at a replica the staleness
    // map records current, instead of discovering a stale/dead primary via
    // a failed round. Position 0 whenever all replicas are current.
    for (u32 k = 0; k < op->chains.size(); ++k) {
      op->chains[k].replica = pick_read_replica(*op, k);
    }
  }
  if (ccache_.enabled()) {
    op->wb_flush = wb_flush;
    op->creq = req;
    Manager& auth = meta_.authority(file.meta.handle);
    if (is_write) {
      // Submission-time write notice: from this instant no cached entry of
      // the touched stripes validates anywhere, covering the whole flight.
      for (u32 s : op->stripes) auth.bump_data_seq(file.meta.handle, s);
      if (!wb_flush) ccache_.invalidate_extents(file.meta.handle, req.file);
    } else {
      op->cache_insertable = true;
      for (u32 s : op->stripes) {
        op->cache_seq[s] = auth.data_seq(file.meta.handle, s);
      }
    }
  }
  op->pending = static_cast<u32>(subs.size());
  assert(op->pending > 0);
  for (u32 k = 0; k < op->pending; ++k) {
    issue_round(op, k, op->launch);
  }
}

// --- Caching tier ---------------------------------------------------------

bool Client::serve_cached_read(const OpenFile& file,
                               const core::ListIoRequest& req,
                               TimePoint start, const IoCallback& done) {
  const Handle h = file.meta.handle;
  Manager& auth = meta_.authority(h);
  const auto valid = [&](u32 stripe, u64 seq, u64 version) {
    if (seq != auth.data_seq(h, stripe)) return false;
    const Manager::StripeVersionView v = auth.stripe_versions(h, stripe);
    return !v.known || version >= v.latest;
  };
  std::vector<std::byte> bytes;
  if (!ccache_.read_lookup(h, req.file, valid, &bytes)) return false;
  // Full coverage with current tags: hand the bytes over host-side. The
  // list-I/O contract makes the concatenated memory segments correspond
  // byte-for-byte to the concatenated file extents.
  u64 off = 0;
  for (const core::MemSegment& m : req.mem) {
    std::memcpy(as_.data(m.addr), bytes.data() + off, m.length);
    off += m.length;
  }
  const TimePoint s = max(start, engine_.now());
  sim::Trace::instance().emitf(
      s, hca_.name(), "read served from cache: %llu B",
      static_cast<unsigned long long>(off));
  done(IoResult{Status::ok(), off, s, s});
  return true;
}

void Client::stage_write_back(const OpenFile& file,
                              const core::ListIoRequest& req, TimePoint start,
                              const IoCallback& done) {
  const Handle h = file.meta.handle;
  std::vector<std::byte> bytes;
  bytes.reserve(req.bytes());
  for (const core::MemSegment& m : req.mem) {
    const std::span<const std::byte> sp = as_.readable_span(m.addr, m.length);
    bytes.insert(bytes.end(), sp.begin(), sp.end());
  }
  const TimePoint s = max(start, engine_.now());
  ccache_.stage_dirty(h, file.meta.stripe_size, file.meta.iod_count, req.file,
                      bytes, s);
  wb_files_[h] = file.meta;
  sim::Trace::instance().emitf(
      s, hca_.name(), "write-back: staged %llu B dirty",
      static_cast<unsigned long long>(bytes.size()));
  if (!wb_timer_armed_[h]) {
    // Bound how long the dirty bytes stay client-local: one flush timer
    // per handle, re-armed on the next staging after it fires.
    wb_timer_armed_[h] = true;
    engine_.schedule_at(s + cfg_.cache.staleness_bound, [this, h] {
      wb_timer_armed_[h] = false;
      start_flush(h, [](IoResult) {});
    });
  }
  done(IoResult{Status::ok(), bytes.size(), s, s});
}

void Client::start_flush(Handle h, IoCallback done) {
  if (!ccache_.write_back() || !ccache_.has_dirty(h)) {
    done(IoResult{Status::ok(), 0, now_, now_});
    return;
  }
  const auto fit = wb_files_.find(h);
  assert(fit != wb_files_.end());
  const OpenFile file{fit->second};
  auto runs = std::make_shared<std::vector<cache::ClientCache::DirtyRun>>(
      ccache_.dirty_runs(h));
  // The flush is an ordinary write op and sources its payload from client
  // memory like one: copy the dirty runs into a scratch allocation.
  u64 total = 0;
  for (const auto& r : *runs) total += r.bytes.size();
  const u64 scratch = as_.alloc(total);
  core::ListIoRequest req;
  u64 off = 0;
  for (const auto& r : *runs) {
    std::span<std::byte> dst =
        as_.writable_span(scratch + off, r.bytes.size());
    std::memcpy(dst.data(), r.bytes.data(), r.bytes.size());
    req.mem.push_back({scratch + off, r.bytes.size()});
    req.file.push_back({r.offset, r.bytes.size()});
    off += r.bytes.size();
  }
  sim::Trace::instance().emitf(
      max(now_, engine_.now()), hca_.name(),
      "write-back: flushing %llu B in %zu runs",
      static_cast<unsigned long long>(total), runs->size());
  start_op(
      file, req, IoOptions{}, max(now_, engine_.now()), /*is_write=*/true,
      [this, h, runs, done = std::move(done)](IoResult r) {
        if (r.ok()) {
          Manager& auth = meta_.authority(h);
          const auto tags = [&](u32 stripe, u64* seq, u64* version) {
            *seq = auth.data_seq(h, stripe);
            const Manager::StripeVersionView v = auth.stripe_versions(h, stripe);
            *version = v.known ? v.latest : 0;
          };
          ccache_.flush_applied(h, *runs, tags);
        }
        done(r);
      },
      /*wb_flush=*/true);
}

void Client::cache_op_complete(OpState& op) {
  if (op.failed) return;
  const Handle h = op.file.meta.handle;
  Manager& auth = meta_.authority(h);
  if (op.is_write) {
    // Completion-time write notice: a read that raced this write and
    // snapshotted the submission seq can no longer insert (or validate)
    // its possibly pre-write bytes.
    std::map<u32, u64> done_seq;
    for (u32 s : op.stripes) done_seq[s] = auth.bump_data_seq(h, s);
    if (op.wb_flush) return;  // flush_applied re-tags the dirty entries
    std::vector<std::byte> bytes;
    bytes.reserve(op.total_bytes);
    for (const core::MemSegment& m : op.creq.mem) {
      const std::span<const std::byte> sp =
          as_.readable_span(m.addr, m.length);
      bytes.insert(bytes.end(), sp.begin(), sp.end());
    }
    const auto tags = [&](u32 stripe, u64* seq, u64* version) {
      const auto it = done_seq.find(stripe);
      *seq = it != done_seq.end() ? it->second : auth.data_seq(h, stripe);
      const Manager::StripeVersionView v = auth.stripe_versions(h, stripe);
      *version = v.known ? v.latest : 0;
    };
    ccache_.insert_clean(h, op.file.meta.stripe_size, op.file.meta.iod_count,
                         op.creq.file, bytes, tags);
    return;
  }
  if (ccache_.write_back() && ccache_.has_dirty(h)) {
    // Read-your-writes: overlay the pending dirty bytes over what the wire
    // just delivered before the caller sees it.
    ccache_.overlay_dirty(
        h, op.creq.file, [&](u64 foff, std::span<const std::byte> b) {
          // Translate the file offset into the op's logical byte position,
          // then scatter into the memory segment list from there.
          u64 logical = 0;
          for (const Extent& e : op.creq.file) {
            if (foff >= e.offset && foff < e.end()) {
              logical += foff - e.offset;
              break;
            }
            logical += e.length;
          }
          u64 pos = logical;
          u64 src = 0;
          for (const core::MemSegment& m : op.creq.mem) {
            if (pos >= m.length) {
              pos -= m.length;
              continue;
            }
            const u64 n = std::min(m.length - pos, b.size() - src);
            std::memcpy(as_.data(m.addr + pos), b.data() + src, n);
            src += n;
            pos = 0;
            if (src == b.size()) break;
          }
        });
  }
  if (!op.cache_insertable) return;
  for (u32 s : op.stripes) {
    // A write submitted or completed during the flight: the bytes in user
    // memory may predate it. Skip the insert wholesale — a snapshot-tagged
    // entry would only be dropped at its first lookup anyway.
    if (auth.data_seq(h, s) != op.cache_seq[s]) return;
  }
  std::vector<std::byte> bytes;
  bytes.reserve(op.total_bytes);
  for (const core::MemSegment& m : op.creq.mem) {
    const std::span<const std::byte> sp = as_.readable_span(m.addr, m.length);
    bytes.insert(bytes.end(), sp.begin(), sp.end());
  }
  const auto tags = [&](u32 stripe, u64* seq, u64* version) {
    const auto it = op.cache_seq.find(stripe);
    *seq = it != op.cache_seq.end() ? it->second : 0;
    const auto vt = op.serve_ver.find(stripe);
    *version = vt != op.serve_ver.end() ? vt->second : 0;
  };
  ccache_.insert_clean(h, op.file.meta.stripe_size, op.file.meta.iod_count,
                       op.creq.file, bytes, tags);
}

IoResult Client::flush(const OpenFile& file) {
  IoResult res{Status::ok(), 0, now_, now_};
  if (!ccache_.write_back() || !ccache_.has_dirty(file.meta.handle)) {
    return res;
  }
  bool done = false;
  start_flush(file.meta.handle, [&](IoResult r) {
    res = r;
    done = true;
  });
  engine_.run_until([&] { return done; });
  advance_to(res.end);
  return res;
}

IoResult Client::close(const OpenFile& file) {
  IoResult r = flush(file);
  if (ccache_.enabled()) ccache_.drop_file(file.meta.handle);
  return r;
}

// --- Round chains ---------------------------------------------------------

bool Client::faulty() const {
  return faults_ != nullptr && faults_->enabled();
}

u32 Client::current_target(const OpState& op, u32 iod_idx) const {
  const std::vector<u32>& set = op.replica_sets[iod_idx];
  return op.is_write ? set[0] : set[op.chains[iod_idx].replica];
}

// --- Version plane --------------------------------------------------------

u32 Client::pick_read_replica(const OpState& op, u32 iod_idx) {
  const std::vector<u32>& set = op.replica_sets[iod_idx];
  if (set.size() <= 1) return 0;
  const Manager::StripeVersionView v =
      meta_.authority(op.file.meta.handle)
          .stripe_versions(op.file.meta.handle, op.stripes[iod_idx]);
  // Candidates the staleness map does not rule out. An unknown stripe (no
  // replicated write ever recorded) keeps everyone eligible.
  std::vector<u32> current;
  for (u32 j = 0; j < set.size(); ++j) {
    if (!v.known || j >= v.replica_versions.size() ||
        v.replica_versions[j] >= v.latest) {
      current.push_back(j);
    }
  }
  if (current.empty()) return 0;  // everyone trails: start at the primary
  u32 choice = current[0];
  if (cfg_.replication.read_bias && current.size() > 1) {
    // Slow-replica bias: among current replicas, prefer the lowest srtt
    // estimate. An unseeded estimator counts as zero (assume fast), which
    // keeps the primary preferred until evidence says otherwise.
    auto est = [&](u32 j) {
      const RttEstimate& e = rtt_[set[j]];
      return e.seeded ? e.srtt : Duration::zero();
    };
    for (u32 j : current) {
      if (est(j) < est(choice)) choice = j;
    }
  }
  if (choice != 0 && v.known && !v.replica_versions.empty() &&
      v.replica_versions[0] < v.latest) {
    // The primary would have served stale data; placement skipped it
    // without burning a failover.
    if (stats_ != nullptr) stats_->add(stat::kPvfsStaleReadsAvoided);
    sim::Trace::instance().emitf(
        engine_.now(), hca_.name(),
        "read placement: stripe %u primary iod%u stale (v%llu < v%llu), "
        "serving from iod%u",
        op.stripes[iod_idx], set[0],
        static_cast<unsigned long long>(v.replica_versions[0]),
        static_cast<unsigned long long>(v.latest), set[choice]);
  }
  return choice;
}

void Client::maybe_read_repair(std::shared_ptr<OpState> op, u32 iod_idx,
                               size_t round_idx, u64 serving_version,
                               TimePoint t) {
  if (!op->replicated || op->is_write) return;
  const std::vector<u32>& set = op->replica_sets[iod_idx];
  const u32 serving = op->chains[iod_idx].replica;
  const u32 stripe = op->stripes[iod_idx];
  // The serving replica demonstrably holds its header's version — a direct
  // observation of an applied header, trusted regardless of which manager
  // epoch minted it (note_epoch 0).
  Manager& authority = meta_.authority(op->file.meta.handle);
  authority.note_replica_version(op->file.meta.handle, stripe, set[serving],
                                 serving_version);
  if (ccache_.enabled()) {
    // Anything we cached below the observed serving version is provably
    // stale now; drop it eagerly instead of waiting for a hit-time check.
    ccache_.note_version(op->file.meta.handle, stripe, serving_version);
  }
  if (serving_version == 0 || !cfg_.replication.read_repair) return;
  const Manager::StripeVersionView v =
      authority.stripe_versions(op->file.meta.handle, stripe);
  for (u32 rep = 0; rep < set.size(); ++rep) {
    if (rep == serving) continue;
    const u64 held =
        rep < v.replica_versions.size() ? v.replica_versions[rep] : 0;
    if (held >= serving_version) continue;
    schedule_repair_write(op, iod_idx, round_idx, rep, serving_version, t);
  }
}

void Client::schedule_repair_write(std::shared_ptr<OpState> op, u32 iod_idx,
                                   size_t round_idx, u32 rep, u64 version,
                                   TimePoint t) {
  const Round& r = op->rounds[iod_idx][round_idx];
  const u32 target = op->replica_sets[iod_idx][rep];
  const Handle lh =
      rep == 0 ? op->file.meta.handle
               : backup_handle(op->file.meta.handle, op->stripes[iod_idx]);
  // Snapshot the just-read bytes now: the op's buffers belong to the
  // caller and may be rewritten the moment the read completes. The repair
  // stream is round-shaped (matches r.accesses in order).
  auto data = std::make_shared<std::vector<std::byte>>();
  data->reserve(r.bytes);
  for (const core::MemSegment& m : r.mem) {
    const std::span<const std::byte> s = as_.readable_span(m.addr, m.length);
    data->insert(data->end(), s.begin(), s.end());
  }
  // Analytical background transfer: pack copy, then the wire at the resync
  // rate cap. Serialized per target iod so repair traffic never bursts.
  const double bw =
      std::min(cfg_.replication.resync_bandwidth, cfg_.net.rdma_write_bw);
  const Duration xfer = cfg_.mem.copy_cost(r.bytes) +
                        cfg_.net.rdma_write_latency +
                        transfer_time(r.bytes, bw);
  TimePoint start = t;
  const auto it = repair_busy_until_.find(target);
  if (it != repair_busy_until_.end()) start = max(start, it->second);
  const TimePoint arrive = start + xfer;
  repair_busy_until_[target] = arrive;
  sim::Trace::instance().emitf(
      t, hca_.name(), "read-repair: round %zu -> iod%u (v%llu, %llu B)",
      round_idx + 1, target, static_cast<unsigned long long>(version),
      static_cast<unsigned long long>(r.bytes));
  engine_.schedule_at(arrive, [this, op, iod_idx, round_idx, target, lh,
                               version, data, arrive] {
    if (faulty() && faults_->iod_down(target, arrive)) {
      // The stale replica is (still) down: drop the repair silently;
      // resync or a later read heals it.
      return;
    }
    iods_[target]->apply_repair(
        lh, op->rounds[iod_idx][round_idx].accesses,
        {data->data(), data->size()}, version, arrive);
    // Deliberately NOT noted with the manager: this repair covers one
    // round's byte range, while the version covers everything written up
    // to it — marking the replica current after a partial heal would
    // misroute future reads. Only write acks and resync mark current.
    if (stats_ != nullptr) stats_->add(stat::kPvfsReadRepairs);
  });
}

void Client::finish_read_round(std::shared_ptr<OpState> op, u32 iod_idx,
                               size_t round_idx, std::shared_ptr<RoundTry> tr,
                               u64 serving_version, TimePoint t) {
  if (op->cache_insertable) {
    // Tag the stripe with the *minimum* version any of its rounds served
    // (see OpState::serve_ver): a stale-replica round must yield an entry
    // the version check rejects.
    const auto [it, fresh] =
        op->serve_ver.emplace(op->stripes[iod_idx], serving_version);
    if (!fresh) it->second = std::min(it->second, serving_version);
  }
  if (tr == nullptr || !tr->settled) {
    if (lost_write_detected(op, iod_idx, round_idx, tr, serving_version, t)) {
      return;  // round re-issued against another replica
    }
    maybe_read_repair(op, iod_idx, round_idx, serving_version, t);
  }
  settle_round(op, iod_idx, round_idx, tr, t, Status::ok());
}

bool Client::lost_write_detected(std::shared_ptr<OpState> op, u32 iod_idx,
                                 size_t round_idx,
                                 std::shared_ptr<RoundTry> tr,
                                 u64 serving_version, TimePoint t) {
  if (tr == nullptr || op->is_write || !op->replicated ||
      !cfg_.replication.read_failover) {
    return false;
  }
  const std::vector<u32>& set = op->replica_sets[iod_idx];
  const u32 nrep = static_cast<u32>(set.size());
  if (nrep <= 1 || tr->failovers + 1 >= nrep) return false;
  OpState::Chain& ch = op->chains[iod_idx];
  const u32 serving = ch.replica;
  const u32 stripe = op->stripes[iod_idx];
  Manager& authority = meta_.authority(op->file.meta.handle);
  const Manager::StripeVersionView v =
      authority.stripe_versions(op->file.meta.handle, stripe);
  // The gate: only an ack the header disproves counts. A replica the map
  // records stale (crash before the write landed, resync off) legitimately
  // serves old data and must keep doing so, bit-for-bit as before.
  if (!v.known || serving >= v.replica_versions.size() ||
      v.replica_versions[serving] < v.latest || serving_version >= v.latest) {
    return false;
  }
  // This settle context still owns the attempt's armed timer; the re-issue
  // arms a fresh one, so the old must be cancelled first (arm_round_timer
  // overwrites the id without cancelling).
  if (tr->timer_armed) {
    engine_.cancel(tr->timer_id);
    tr->timer_armed = false;
  }
  authority.note_replica_observed(op->file.meta.handle, stripe, set[serving],
                                  serving_version);
  if (stats_ != nullptr) {
    stats_->add(stat::kPvfsCorruptionsDetected);
    stats_->add(stat::kPvfsCorruptReadsFailedOver);
    stats_->add(stat::kPvfsFailovers);
  }
  u32 next = (serving + 1) % nrep;
  for (u32 i = 1; i <= nrep; ++i) {
    const u32 cand = (serving + i) % nrep;
    if (cand != serving && !(faulty() && faults_->iod_down(set[cand], t))) {
      next = cand;
      break;
    }
  }
  sim::Trace::instance().emitf(
      t, hca_.name(),
      "read round %zu: iod%u header v%llu but acked v%llu (LOST WRITE), "
      "failing over to iod%u",
      round_idx + 1, set[serving],
      static_cast<unsigned long long>(serving_version),
      static_cast<unsigned long long>(v.replica_versions[serving]),
      set[next]);
  ch.replica = next;
  ++tr->failovers;
  tr->budget_base = tr->attempts;
  ++tr->attempts;
  run_read_round(op, iod_idx, round_idx, t, tr);
  return true;
}

// --- Adaptive round timeouts ---------------------------------------------

void Client::note_rtt(u32 iod_id, Duration sample) {
  RttEstimate& e = rtt_[iod_id];
  if (!e.seeded) {
    // RFC-6298-style seeding: srtt = S, rttvar = S/2.
    e.seeded = true;
    e.srtt = sample;
    e.rttvar = sample / 2;
    return;
  }
  // Jacobson/Karels: alpha = 1/8, beta = 1/4.
  const Duration err = sample > e.srtt ? sample - e.srtt : e.srtt - sample;
  e.rttvar = e.rttvar - e.rttvar / 4 + err / 4;
  e.srtt = e.srtt - e.srtt / 8 + sample / 8;
}

Duration Client::iod_timeout(u32 iod_id) const {
  const FaultConfig& fc = faults_->config();
  const RttEstimate& e = rtt_[iod_id];
  if (!e.seeded) return fc.round_timeout;
  Duration t = e.srtt + e.rttvar * fc.timeout_var_mult;
  t = max(t, fc.timeout_min);
  return min(t, fc.timeout_max);
}

Duration Client::round_timeout_for(const OpState& op, u32 iod_idx) const {
  const FaultConfig& fc = faults_->config();
  if (!fc.adaptive_timeout) return fc.round_timeout;
  if (op.is_write && op.replicated) {
    // The round settles on a quorum of replicas; the slowest estimate
    // bounds how long a fan-out may legitimately take.
    Duration t = Duration::zero();
    for (u32 iod_id : op.replica_sets[iod_idx]) {
      t = max(t, iod_timeout(iod_id));
    }
    return t;
  }
  return iod_timeout(current_target(op, iod_idx));
}

void Client::issue_round(std::shared_ptr<OpState> op, u32 iod_idx,
                         TimePoint t) {
  OpState::Chain& ch = op->chains[iod_idx];
  assert(ch.next_issue < op->rounds[iod_idx].size());
  assert(ch.inflight < op->window);
  assert(ch.next_issue < ch.floor + op->window);
  const size_t round_idx = ch.next_issue++;
  ++ch.inflight;
  if (op->window > 1 && stats_ != nullptr) {
    stats_->set_max(stat::kPvfsRoundsInflightMax, ch.inflight);
  }
  std::shared_ptr<RoundTry> tr;
  // Recovery/fan state exists under a fault plane, and also for replicated
  // writes on a healthy run (the quorum count needs per-replica acks).
  if (faulty() || (op->replicated && op->is_write)) {
    tr = std::make_shared<RoundTry>();
    tr->seq = next_round_seq_++;
    tr->first_issue = t;
    tr->acked.assign(op->replica_sets[iod_idx].size(), false);
    tr->data_landed.assign(op->replica_sets[iod_idx].size(), false);
    if (op->replicated && op->is_write) {
      // Mint this round's per-stripe version (free piggyback on the
      // metadata plane). Replays reuse it — a round is one version — and
      // carry the minting manager's epoch so iods can fence the mint if a
      // takeover supersedes it mid-flight.
      Manager& authority = meta_.authority(op->file.meta.handle);
      tr->version = authority.allocate_stripe_version(op->file.meta.handle,
                                                      op->stripes[iod_idx]);
      tr->epoch = authority.epoch();
    }
  }
  if (op->is_write) {
    run_write_round(op, iod_idx, round_idx, t, std::move(tr));
  } else {
    run_read_round(op, iod_idx, round_idx, t, std::move(tr));
  }
}

void Client::wire_cleared(std::shared_ptr<OpState> op, u32 iod_idx,
                          TimePoint t) {
  OpState::Chain& ch = op->chains[iod_idx];
  if (op->failed || ch.next_issue >= op->rounds[iod_idx].size()) return;
  if (ch.inflight >= op->window || ch.next_issue >= ch.floor + op->window) {
    // Window full (or the next slot's previous occupant has not settled):
    // remember the stall; round_done() issues on the next reply and
    // charges the blocked time to IoPhases::stall.
    if (!ch.stalled) {
      ch.stalled = true;
      ch.blocked_since = t;
    }
    return;
  }
  issue_round(op, iod_idx, t);
}

void Client::round_done(std::shared_ptr<OpState> op, u32 iod_idx,
                        size_t round_idx, TimePoint t, Status status) {
  OpState::Chain& ch = op->chains[iod_idx];
  assert(ch.inflight > 0);
  --ch.inflight;
  assert(round_idx < ch.settled_rounds.size());
  ch.settled_rounds[round_idx] = true;
  while (ch.floor < ch.settled_rounds.size() && ch.settled_rounds[ch.floor]) {
    ++ch.floor;
  }
  if (!status.is_ok() && !op->failed) {
    op->failed = true;
    op->status = status;
  }
  const bool more = !op->failed && ch.next_issue < op->rounds[iod_idx].size();
  // At window 1 replies are the only issuance trigger (classic lockstep
  // PVFS). At wider windows issuance normally rides the wire-cleared
  // trigger; a reply only issues when that trigger already fired into a
  // full window (the chain is stalled). Under an active fault plane
  // rounds settle out of order, so a settle is also allowed to issue
  // directly — the wire-cleared trigger for the freed slot may be long
  // gone.
  if (more && ch.inflight < op->window &&
      ch.next_issue < ch.floor + op->window &&
      (op->window == 1 || ch.stalled || faulty())) {
    if (ch.stalled) {
      ch.stalled = false;
      op->phases.stall += t - ch.blocked_since;
      if (stats_ != nullptr) stats_->add(stat::kPvfsPipelineStalls);
    }
    issue_round(op, iod_idx, t);
  }
  if (ch.inflight > 0 ||
      (!op->failed && ch.next_issue < op->rounds[iod_idx].size())) {
    return;  // chain still running
  }
  op->max_end = max(op->max_end, t);
  if (--op->pending == 0) {
    if (!op->prereg.keys.empty()) registrar_.release(op->prereg);
    if (op->is_write && !op->failed) {
      meta_.authority(op->file.meta.handle)
          .note_written(op->file.meta.handle, op->logical_end);
    }
    if (ccache_.enabled()) cache_op_complete(*op);
    IoResult result;
    result.status = op->status;
    result.bytes = op->failed ? 0 : op->total_bytes;
    result.start = op->start;
    result.end = op->max_end;
    result.phases = op->phases;
    result.retries = op->retries;
    result.failovers = op->failovers;
    sim::Trace::instance().emitf(
        result.end, hca_.name(), "%s op complete: %llu B in %s",
        op->is_write ? "write" : "read",
        static_cast<unsigned long long>(result.bytes),
        result.elapsed().to_string().c_str());
    op->done(result);
  }
}

// --- Recovery -------------------------------------------------------------

void Client::arm_round_timer(std::shared_ptr<OpState> op, u32 iod_idx,
                             size_t round_idx, std::shared_ptr<RoundTry> tr,
                             TimePoint t) {
  const TimePoint deadline = t + round_timeout_for(*op, iod_idx);
  tr->timer_armed = true;
  tr->timer_id =
      engine_.schedule_at(deadline, [this, op, iod_idx, round_idx, tr] {
        tr->timer_armed = false;
        if (tr->settled) return;
        if (stats_ != nullptr) stats_->add(stat::kPvfsTimeouts);
        sim::Trace::instance().emitf(
            engine_.now(), hca_.name(),
            "iod%u round %zu attempt %u timed out",
            current_target(*op, iod_idx), round_idx + 1, tr->attempts);
        retry_or_fail(op, iod_idx, round_idx, tr, engine_.now(),
                      unavailable("round timed out waiting for reply"));
      });
}

void Client::settle_round(std::shared_ptr<OpState> op, u32 iod_idx,
                          size_t round_idx, std::shared_ptr<RoundTry> tr,
                          TimePoint t, Status status) {
  if (tr != nullptr) {
    if (tr->settled) return;  // a concurrent attempt already settled it
    tr->settled = true;
    if (tr->timer_armed) {
      engine_.cancel(tr->timer_id);
      tr->timer_armed = false;
    }
    op->retries += tr->attempts - 1;
    op->failovers += tr->failovers;
    if (faulty()) {
      faults_->note_round_latency(t - tr->first_issue);
      // Replicated writes feed the estimator per replica ack instead
      // (write_replica_done); a settle from an older attempt's late
      // completion can predate the newest issue, so skip those samples.
      if (status.is_ok() && faults_->config().adaptive_timeout &&
          !(op->is_write && op->replicated) && t >= tr->last_issue) {
        note_rtt(current_target(*op, iod_idx), t - tr->last_issue);
      }
    }
  }
  round_done(op, iod_idx, round_idx, t, std::move(status));
}

void Client::fail_round(std::shared_ptr<OpState> op, u32 iod_idx,
                        size_t round_idx, std::shared_ptr<RoundTry> tr,
                        TimePoint t, Status why) {
  if (tr != nullptr) {
    retry_or_fail(op, iod_idx, round_idx, tr, t, std::move(why));
  } else {
    round_done(op, iod_idx, round_idx, t, std::move(why));
  }
}

void Client::retry_or_fail(std::shared_ptr<OpState> op, u32 iod_idx,
                           size_t round_idx, std::shared_ptr<RoundTry> tr,
                           TimePoint t, Status why) {
  if (tr->settled) return;
  if (tr->timer_armed) {
    engine_.cancel(tr->timer_id);
    tr->timer_armed = false;
  }
  if (why.code() == ErrorCode::kCorrupt && !op->is_write) {
    // The serving replica's bytes failed checksum verification. Retrying
    // the same copy is pointless (the bytes are what they are): flag it
    // with the staleness map — it becomes a resync target and placement
    // stops routing to it — and fail the chain over to another replica.
    const std::vector<u32>& set = op->replica_sets[iod_idx];
    const u32 nrep = static_cast<u32>(set.size());
    OpState::Chain& ch = op->chains[iod_idx];
    meta_.authority(op->file.meta.handle)
        .note_replica_corrupt(op->file.meta.handle, op->stripes[iod_idx],
                              set[ch.replica]);
    if (op->replicated && cfg_.replication.read_failover &&
        tr->failovers + 1 < nrep) {
      u32 next = (ch.replica + 1) % nrep;
      for (u32 i = 1; i <= nrep; ++i) {
        const u32 cand = (ch.replica + i) % nrep;
        if (cand != ch.replica &&
            !(faulty() && faults_->iod_down(set[cand], t))) {
          next = cand;
          break;
        }
      }
      const u32 from_iod = set[ch.replica];
      ch.replica = next;
      ++tr->failovers;
      tr->budget_base = tr->attempts;
      ++tr->attempts;
      if (stats_ != nullptr) {
        stats_->add(stat::kPvfsCorruptReadsFailedOver);
        stats_->add(stat::kPvfsFailovers);
      }
      sim::Trace::instance().emitf(
          t, hca_.name(),
          "read round %zu: iod%u corrupt, failing over to iod%u",
          round_idx + 1, from_iod, set[next]);
      run_read_round(op, iod_idx, round_idx, t, tr);
      return;
    }
    // No replica left to serve intact bytes: terminal.
    settle_round(op, iod_idx, round_idx, tr, t, std::move(why));
    return;
  }
  // Transient errors are only minted by the fault plane; a RoundTry can
  // also exist for a replicated write on a healthy run, where any failure
  // is a real (terminal) one.
  const bool retryable = faulty() &&
                         (why.code() == ErrorCode::kUnavailable ||
                          why.code() == ErrorCode::kResourceExhausted);
  if (!retryable) {
    settle_round(op, iod_idx, round_idx, tr, t, std::move(why));
    return;
  }
  const FaultConfig& fc = faults_->config();
  // The budget counts attempts since the last failover: a fresh replica
  // deserves a fresh budget.
  if (tr->attempts - 1 - tr->budget_base >= fc.max_retries) {
    const std::vector<u32>& set = op->replica_sets[iod_idx];
    const u32 nrep = static_cast<u32>(set.size());
    if (!op->is_write && op->replicated && cfg_.replication.read_failover &&
        tr->failovers + 1 < nrep) {
      // Read failover: the serving replica exhausted its budget; re-route
      // this round — and the chain's remaining rounds — to the next live
      // replica (falling back to plain rotation if all look down).
      OpState::Chain& ch = op->chains[iod_idx];
      u32 next = (ch.replica + 1) % nrep;
      for (u32 i = 1; i <= nrep; ++i) {
        const u32 cand = (ch.replica + i) % nrep;
        if (cand != ch.replica && !faults_->iod_down(set[cand], t)) {
          next = cand;
          break;
        }
      }
      const u32 from_iod = set[ch.replica];
      ch.replica = next;
      ++tr->failovers;
      tr->budget_base = tr->attempts;
      ++tr->attempts;
      if (stats_ != nullptr) {
        stats_->add(stat::kPvfsFailovers);
        stats_->add(stat::kPvfsRetries);
      }
      sim::Trace::instance().emitf(
          t, hca_.name(), "read round %zu failing over iod%u -> iod%u",
          round_idx + 1, from_iod, set[next]);
      // The new replica is presumed healthy: re-issue immediately.
      run_read_round(op, iod_idx, round_idx, t, tr);
      return;
    }
    if (!op->is_write && op->replicated && cfg_.replication.read_failover &&
        nrep > 1) {
      // Failover ran out of replicas: every member of the chain burned a
      // full retry budget. Distinct terminal status so callers can tell
      // "the whole chain is gone" from a single overloaded server.
      settle_round(op, iod_idx, round_idx, tr, t,
                   all_replicas_failed(
                       "read exhausted all " + std::to_string(nrep) +
                       " replicas (" + std::to_string(tr->attempts - 1) +
                       " attempts, " + std::to_string(tr->failovers) +
                       " failovers): " + why.message()));
      return;
    }
    settle_round(op, iod_idx, round_idx, tr, t,
                 unavailable("round failed after " +
                             std::to_string(tr->attempts - 1) +
                             " retries: " + why.message()));
    return;
  }
  if (stats_ != nullptr) stats_->add(stat::kPvfsRetries);
  // Exponential backoff, capped: base * mult^(retry - 1), the exponent
  // restarting with the budget at each failover.
  Duration backoff = fc.backoff_base;
  for (u32 i = 1; i < tr->attempts - tr->budget_base && backoff < fc.backoff_cap;
       ++i) {
    backoff = backoff * fc.backoff_mult;
  }
  backoff = min(backoff, fc.backoff_cap);
  ++tr->attempts;
  sim::Trace::instance().emitf(
      t, hca_.name(), "iod%u round %zu retry %u in %s (%s)",
      current_target(*op, iod_idx), round_idx + 1, tr->attempts - 1,
      backoff.to_string().c_str(), why.message().c_str());
  engine_.schedule_at(t + backoff, [this, op, iod_idx, round_idx, tr] {
    if (tr->settled) return;
    if (op->is_write) {
      run_write_round(op, iod_idx, round_idx, engine_.now(), tr);
    } else {
      run_read_round(op, iod_idx, round_idx, engine_.now(), tr);
    }
  });
}

// --- Write rounds --------------------------------------------------------

void Client::run_write_round(std::shared_ptr<OpState> op, u32 iod_idx,
                             size_t round_idx, TimePoint t0,
                             std::shared_ptr<RoundTry> tr) {
  if (tr != nullptr && faulty()) arm_round_timer(op, iod_idx, round_idx, tr, t0);
  if (tr != nullptr) tr->last_issue = t0;
  t0 += cfg_.pvfs.client_request_cpu;
  const u32 nrep = static_cast<u32>(op->replica_sets[iod_idx].size());
  for (u32 rep = 0; rep < nrep; ++rep) {
    // Replays only re-fan to replicas that never acked; the acked ones
    // already hold (and applied) the data.
    if (tr != nullptr && tr->acked[rep]) continue;
    run_write_replica(op, iod_idx, round_idx, rep, t0, tr);
  }
}

void Client::write_replica_done(std::shared_ptr<OpState> op, u32 iod_idx,
                                size_t round_idx, u32 rep,
                                std::shared_ptr<RoundTry> tr, TimePoint t,
                                u64 ack_version, u64 attempt_seq,
                                bool epoch_rejected) {
  if (!op->replicated || tr == nullptr) {
    settle_round(op, iod_idx, round_idx, tr, t, Status::ok());
    return;
  }
  // An ack from an attempt a re-mint has since superseded (its seq is not
  // the round's current one) proves nothing about the current mint's fate.
  if (attempt_seq != tr->seq) return;
  if (epoch_rejected) {
    if (tr->settled) return;  // quorum settled before the fence was seen
    // The iod landed the bytes but fenced the version out of the header: a
    // takeover superseded the minting manager mid-flight. The round cannot
    // make progress under the dead mint, so re-mint version+epoch from the
    // current authority and replay everywhere under a *fresh* seq: the old
    // seq sits in the iods' dedupe logs and a same-seq replay would be
    // acked without re-running the disk phase — the header would never
    // move. A fresh seq also means the staged-payload shortcut no longer
    // applies (the replay carries data again), so data_landed resets too.
    if (tr->timer_armed) {
      engine_.cancel(tr->timer_id);
      tr->timer_armed = false;
    }
    Manager& authority = meta_.authority(op->file.meta.handle);
    tr->version = authority.allocate_stripe_version(op->file.meta.handle,
                                                    op->stripes[iod_idx]);
    tr->epoch = authority.epoch();
    tr->seq = next_round_seq_++;
    tr->acked.assign(op->replica_sets[iod_idx].size(), false);
    tr->data_landed.assign(op->replica_sets[iod_idx].size(), false);
    tr->acks = 0;
    tr->have_first_ack = false;
    ++tr->attempts;
    if (stats_ != nullptr) {
      stats_->add(stat::kPvfsVersionRemints);
      stats_->add(stat::kPvfsRetries);
    }
    sim::Trace::instance().emitf(
        t, hca_.name(),
        "write round %zu: mint fenced by epoch, re-minting v%llu "
        "(epoch %llu) and replaying",
        round_idx + 1, static_cast<unsigned long long>(tr->version),
        static_cast<unsigned long long>(tr->epoch));
    run_write_round(op, iod_idx, round_idx, t, tr);
    return;
  }
  if (tr->acked[rep]) return;  // duplicate ack of one replica
  tr->acked[rep] = true;
  // Record the ack with the staleness map even when the quorum already
  // settled the round: a slow-but-alive replica that acks late is current,
  // not stale, and must stay eligible for read placement. The note carries
  // the round's mint epoch; the manager fences notes whose epoch a
  // takeover has superseded.
  meta_.authority(op->file.meta.handle)
      .note_replica_version(op->file.meta.handle, op->stripes[iod_idx],
                            op->replica_sets[iod_idx][rep],
                            ack_version != 0 ? ack_version : tr->version,
                            tr->epoch);
  if (ccache_.enabled()) {
    ccache_.note_version(op->file.meta.handle, op->stripes[iod_idx],
                         ack_version != 0 ? ack_version : tr->version);
  }
  if (tr->settled) return;  // late ack after quorum settle
  ++tr->acks;
  if (!tr->have_first_ack) {
    tr->have_first_ack = true;
    tr->first_ack = t;
  }
  if (faulty() && faults_->config().adaptive_timeout &&
      t >= tr->last_issue) {
    note_rtt(op->replica_sets[iod_idx][rep], t - tr->last_issue);
  }
  if (tr->acks < op->quorum) return;  // timer stays armed for the rest
  if (stats_ != nullptr && op->quorum > 1 && t > tr->first_ack) {
    stats_->add(stat::kPvfsQuorumWaits);
  }
  settle_round(op, iod_idx, round_idx, tr, t, Status::ok());
}

void Client::run_write_replica(std::shared_ptr<OpState> op, u32 iod_idx,
                               size_t round_idx, u32 rep, TimePoint t0,
                               std::shared_ptr<RoundTry> tr) {
  const Round& r = op->rounds[iod_idx][round_idx];
  const u32 iod_id = op->replica_sets[iod_idx][rep];
  Iod& iod = *iods_[iod_id];

  RoundRequest rr;
  // A backup copy lives under the stripe's shadow handle and in its own
  // staging-slot region: the target iod also serves a neighbour stripe's
  // primary chain for this client, and the two must not share local files,
  // staging buffers, or the (client, slot) replay-dedupe log.
  rr.handle = rep == 0
                  ? op->file.meta.handle
                  : backup_handle(op->file.meta.handle, op->stripes[iod_idx]);
  rr.client = id_;
  rr.slot = rep * op->window + static_cast<u32>(round_idx % op->window);
  rr.round_seq = tr != nullptr ? tr->seq : 0;
  rr.version = tr != nullptr ? tr->version : 0;
  rr.epoch = tr != nullptr ? tr->epoch : 0;
  rr.is_write = true;
  rr.sync = op->opts.sync;
  rr.use_ads = op->opts.use_ads;
  rr.accesses = r.accesses;
  // Partial-round restart: an earlier attempt's payload already landed in
  // this replica's staging slot (and was applied — data arrival and the
  // disk phase are atomic at the iod), so the replay carries no data
  // phase; the iod dedupes it by round_seq and just acks.
  const bool staged =
      tr != nullptr && rep < tr->data_landed.size() && tr->data_landed[rep];
  rr.data_staged = staged;

  if (stats_ != nullptr) {
    stats_->add(stat::kPvfsRequest);
    if (rep > 0) stats_->add(stat::kPvfsReplicaWrites);
  }
  const u64 req_bytes =
      cfg_.pvfs.request_msg_bytes +
      r.accesses.size() * cfg_.pvfs.list_pair_wire_bytes;
  const TimePoint t_req = fabric_.send_control(hca_, iod.hca(), req_bytes, t0,
                                               ib::ControlKind::kRequest);
  // Fault plane: the request may vanish (random drop, scheduled drop, or
  // a crashed iod). The wire time was spent; nothing downstream happens
  // and the round timer drives the replay.
  const bool req_lost =
      tr != nullptr && faulty() && faults_->request_lost(iod_id, t_req);

  TimePoint data_ready;
  if (staged) {
    if (stats_ != nullptr) stats_->add(stat::kPvfsPartialRestarts);
    sim::Trace::instance().emitf(
        t0, hca_.name(),
        "-> iod%u write round %zu replay, payload staged (wire skipped)",
        iod_id, round_idx + 1);
    if (req_lost) {
      sim::Trace::instance().emitf(t_req, hca_.name(),
                                   "-> iod%u round %zu request lost", iod_id,
                                   round_idx + 1);
      return;
    }
    data_ready = t_req;
  } else {
    const auto& pol = op->opts.policy;
    const bool eager =
        r.bytes <= cfg_.pvfs.fast_rdma_threshold &&
        (pol.scheme == core::XferScheme::kHybrid ||
         pol.scheme == core::XferScheme::kPackUnpack);
    sim::Trace::instance().emitf(
        t0, hca_.name(), "-> iod%u write round %zu/%zu: %zu pairs, %llu B (%s)",
        iod_id, round_idx + 1, op->rounds[iod_idx].size(),
        r.accesses.size(), static_cast<unsigned long long>(r.bytes),
        eager ? "fast-rdma eager" : "rendezvous");
    if (req_lost && !eager) {
      // Rendezvous: the iod never saw the request, so no ack ever comes.
      sim::Trace::instance().emitf(t_req, hca_.name(),
                                   "-> iod%u round %zu request lost", iod_id,
                                   round_idx + 1);
      return;
    }

    core::TransferOutcome push;
    TimePoint push_start;
    if (eager) {
      // Fast RDMA: pack into the pre-registered bounce buffer and write it
      // into the iod's staging buffer alongside the request.
      core::TransferPolicy p = pol;
      p.scheme = core::XferScheme::kPackUnpack;
      p.pack_preregistered = true;
      push = xfer_.push(ep_, r.mem, iod.staging(id_, rr.slot), t0, p);
      push_start = t0;
      data_ready = max(push.complete, t_req);
      if (req_lost) {
        // The eager data rode along with the lost request; the client still
        // paid for the push but the iod never services the round.
        if (push.ok()) {
          op->phases.registration += push.reg_cost;
          op->phases.wire += (push.complete - push_start) - push.reg_cost;
        }
        sim::Trace::instance().emitf(t_req, hca_.name(),
                                     "-> iod%u round %zu request lost", iod_id,
                                     round_idx + 1);
        return;
      }
    } else {
      // Rendezvous: the iod acknowledges buffer availability, then the client
      // pushes with the configured scheme.
      const TimePoint ack = fabric_.send_control(
          iod.hca(), hca_, cfg_.pvfs.reply_msg_bytes,
          t_req + cfg_.pvfs.iod_request_cpu, ib::ControlKind::kReply);
      push = xfer_.push(ep_, r.mem, iod.staging(id_, rr.slot), ack, pol);
      push_start = ack;
      data_ready = push.complete;
    }
    if (!push.ok()) {
      fail_round(op, iod_idx, round_idx, tr, data_ready, push.status);
      return;
    }
    op->phases.registration += push.reg_cost;
    op->phases.wire += (push.complete - push_start) - push.reg_cost;
  }

  // Server disk phase begins when the data has landed.
  engine_.schedule_at(data_ready, [this, op, iod_idx, round_idx, rep, tr,
                                   rr = std::move(rr), &iod, iod_id,
                                   data_ready] {
    if (tr != nullptr && faulty() && faults_->iod_down(iod_id, data_ready)) {
      // The iod crashed between accepting the request and the data
      // landing: the round dies on the server floor; the timer replays it.
      if (stats_ != nullptr) stats_->add(stat::kFaultIodDownDrop);
      sim::Trace::instance().emitf(data_ready, hca_.name(),
                                   "iod%u down, round %zu data dropped",
                                   iod_id, round_idx + 1);
      return;
    }
    if (tr != nullptr && rep < tr->data_landed.size()) {
      tr->data_landed[rep] = true;
    }
    Duration disk_cost = Duration::zero();
    u64 ack_version = 0;
    bool epoch_rejected = false;
    const TimePoint t_disk =
        iod.write_round(rr, data_ready + cfg_.pvfs.iod_request_cpu,
                        &disk_cost, &ack_version, &epoch_rejected);
    op->phases.disk += disk_cost;
    if (stats_ != nullptr) stats_->add(stat::kPvfsReply);
    const u64 attempt_seq = rr.round_seq;
    auto send_reply = [this, op, iod_idx, round_idx, rep, tr, &iod, iod_id,
                       t_disk, ack_version, attempt_seq, epoch_rejected] {
      const TimePoint t_reply =
          fabric_.send_control(iod.hca(), hca_, cfg_.pvfs.reply_msg_bytes,
                               t_disk, ib::ControlKind::kReply);
      if (tr != nullptr && faulty() && faults_->reply_lost(iod_id, t_disk)) {
        // The write applied but its ack vanished; the replay is recognised
        // by round_seq at the iod and acked without re-running the disk.
        // The version note rides the ack, so it is lost with it.
        sim::Trace::instance().emitf(t_disk, hca_.name(),
                                     "iod%u round %zu reply lost", iod_id,
                                     round_idx + 1);
        return;
      }
      engine_.schedule_at(t_reply, [this, op, iod_idx, round_idx, rep, tr,
                                    t_reply, ack_version, attempt_seq,
                                    epoch_rejected] {
        write_replica_done(op, iod_idx, round_idx, rep, tr, t_reply,
                           ack_version, attempt_seq, epoch_rejected);
      });
    };
    if (op->replica_sets[iod_idx].size() > 1) {
      // NIC occupancy is booked in call order, so a replica fan whose disk
      // phases diverge (one copy on a degraded disk) must issue its reply
      // sends in nondecreasing virtual time or the slow copy's in-flight
      // ack time leaks into the fast copy's. Factor-1 chains keep the
      // inline call: one reply per round, issue order already matches.
      engine_.schedule_at(t_disk, send_reply);
    } else {
      send_reply();
    }
  });
  // With the data phase off the wire, the client NIC is free: a wider
  // window may put the next round's request on the wire while this round's
  // disk phase and reply are still pending. The primary's data phase
  // stands in for the whole fan (backup pushes start in lockstep).
  if (op->window > 1 && rep == 0 && !staged) {
    engine_.schedule_at(data_ready, [this, op, iod_idx, data_ready] {
      wire_cleared(op, iod_idx, data_ready);
    });
  }
}

// --- Read rounds -----------------------------------------------------

void Client::run_read_round(std::shared_ptr<OpState> op, u32 iod_idx,
                            size_t round_idx, TimePoint t0,
                            std::shared_ptr<RoundTry> tr) {
  if (tr != nullptr) arm_round_timer(op, iod_idx, round_idx, tr, t0);
  if (tr != nullptr) tr->last_issue = t0;
  t0 += cfg_.pvfs.client_request_cpu;
  const Round& r = op->rounds[iod_idx][round_idx];
  // Reads are served by whichever replica the chain currently points at
  // (the primary until a failover moves it).
  const u32 iod_id = current_target(*op, iod_idx);
  Iod& iod = *iods_[iod_id];

  const u32 replica = op->chains[iod_idx].replica;
  RoundRequest rr;
  // After a failover the backup serves the stripe from its shadow-handle
  // local file, through its own staging-slot region (the backup iod's
  // primary-chain slots for this client belong to a different stripe).
  rr.handle = replica == 0
                  ? op->file.meta.handle
                  : backup_handle(op->file.meta.handle, op->stripes[iod_idx]);
  rr.client = id_;
  rr.slot = replica * op->window + static_cast<u32>(round_idx % op->window);
  rr.round_seq = tr != nullptr ? tr->seq : 0;
  rr.is_write = false;
  rr.sync = op->opts.sync;
  rr.use_ads = op->opts.use_ads;
  rr.accesses = r.accesses;

  const auto& pol = op->opts.policy;
  const bool fast =
      r.bytes <= cfg_.pvfs.fast_rdma_threshold &&
      (pol.scheme == core::XferScheme::kHybrid ||
       pol.scheme == core::XferScheme::kPackUnpack);
  const bool direct =
      !fast && op->opts.direct_read_return && r.mem.size() == 1 &&
      (pol.scheme == core::XferScheme::kHybrid ||
       pol.scheme == core::XferScheme::kRdmaGatherScatter);
  const ReadReturn path = fast ? ReadReturn::kFastBounce
                          : direct ? ReadReturn::kDirectGather
                                   : ReadReturn::kClientPull;

  TimePoint t_client = t0;
  u64 dest = 0;
  u32 rkey = 0;
  u32 release_key = 0;
  if (fast) {
    dest = ep_.bounce_addr;
    rkey = ep_.bounce_key;
  } else if (direct) {
    // Pin the single destination buffer and ship its rkey in the request.
    ib::MrCache::Lookup lk = cache_.acquire(r.mem[0].addr, r.mem[0].length);
    if (!lk.ok()) {
      fail_round(op, iod_idx, round_idx, tr, t_client, lk.status);
      return;
    }
    t_client += lk.cost;
    op->phases.registration += lk.cost;
    dest = r.mem[0].addr;
    rkey = lk.key;
    release_key = lk.key;
  }

  if (stats_ != nullptr) stats_->add(stat::kPvfsRequest);
  const u64 req_bytes =
      cfg_.pvfs.request_msg_bytes +
      r.accesses.size() * cfg_.pvfs.list_pair_wire_bytes;
  const TimePoint t_req = fabric_.send_control(
      hca_, iod.hca(), req_bytes, t_client, ib::ControlKind::kRequest);
  if (tr != nullptr && faults_->request_lost(iod_id, t_req)) {
    // The iod never sees the read round; the timer drives the replay,
    // which pins its own destination key.
    if (release_key != 0) cache_.release(release_key);
    sim::Trace::instance().emitf(t_req, hca_.name(),
                                 "-> iod%u round %zu request lost", iod_id,
                                 round_idx + 1);
    return;
  }

  engine_.schedule_at(t_req, [this, op, iod_idx, round_idx, tr,
                              rr = std::move(rr), &iod, iod_id, t_req, path,
                              dest, rkey, release_key,
                              r = &op->rounds[iod_idx][round_idx]] {
    const TimePoint t_svc = t_req + cfg_.pvfs.iod_request_cpu;
    Iod::ReadService svc = iod.read_round(rr, t_svc, path, &hca_, dest, rkey);
    if (stats_ != nullptr) stats_->add(stat::kPvfsReply);
    if (!svc.ok()) {
      if (release_key != 0) cache_.release(release_key);
      fail_round(op, iod_idx, round_idx, tr, svc.ready, svc.status);
      return;
    }
    if (tr != nullptr && faults_->reply_lost(iod_id, svc.ready)) {
      // The return leg (data push completion or ready ack) vanished;
      // reads are naturally idempotent, so the replay just re-reads.
      if (release_key != 0) cache_.release(release_key);
      sim::Trace::instance().emitf(svc.ready, hca_.name(),
                                   "iod%u round %zu reply lost", iod_id,
                                   round_idx + 1);
      return;
    }
    op->phases.disk += svc.disk_cost;
    switch (path) {
      case ReadReturn::kFastBounce: {
        // Unpack the bounce buffer into the user's list buffers.
        u64 off = 0;
        for (const core::MemSegment& m : r->mem) {
          std::memcpy(as_.data(m.addr), as_.data(ep_.bounce_addr + off),
                      m.length);
          off += m.length;
        }
        op->phases.wire +=
            (svc.ready - t_svc) - svc.disk_cost + cfg_.mem.copy_cost(off);
        const TimePoint t_done = svc.ready + cfg_.mem.copy_cost(off);
        engine_.schedule_at(t_done, [this, op, iod_idx, round_idx, tr,
                                     t_done, ver = svc.version] {
          finish_read_round(op, iod_idx, round_idx, tr, ver, t_done);
        });
        break;
      }
      case ReadReturn::kDirectGather: {
        op->phases.wire += (svc.ready - t_svc) - svc.disk_cost;
        engine_.schedule_at(svc.ready, [this, op, iod_idx, round_idx, tr,
                                        release_key, t = svc.ready,
                                        ver = svc.version] {
          if (release_key != 0) cache_.release(release_key);
          finish_read_round(op, iod_idx, round_idx, tr, ver, t);
        });
        break;
      }
      case ReadReturn::kClientPull: {
        // The iod tells the client the staging buffer is ready; the client
        // pulls with its configured scheme.
        const TimePoint ack = fabric_.send_control(
            iod.hca(), hca_, cfg_.pvfs.reply_msg_bytes, svc.ready,
            ib::ControlKind::kReply);
        engine_.schedule_at(ack, [this, op, iod_idx, round_idx, tr, &iod,
                                  ack, r, slot = rr.slot,
                                  ver = svc.version] {
          core::TransferOutcome pull =
              xfer_.pull(ep_, r->mem, iod.staging(id_, slot), ack,
                         op->opts.policy);
          if (pull.ok()) {
            op->phases.registration += pull.reg_cost;
            op->phases.wire += (pull.complete - ack) - pull.reg_cost;
          }
          const TimePoint t_done = pull.complete;
          engine_.schedule_at(t_done, [this, op, iod_idx, round_idx, tr,
                                       t_done, st = pull.status, ver] {
            if (st.is_ok()) {
              finish_read_round(op, iod_idx, round_idx, tr, ver, t_done);
            } else {
              fail_round(op, iod_idx, round_idx, tr, t_done, st);
            }
          });
        });
        break;
      }
    }
  });
  // The request is on the wire; a wider window may issue the next round's
  // request right behind it while this round is still being serviced.
  if (op->window > 1) {
    engine_.schedule_at(t_req, [this, op, iod_idx, t_req] {
      wire_cleared(op, iod_idx, t_req);
    });
  }
}

// --- IoHandle --------------------------------------------------------

bool IoHandle::poll() const { return state_ != nullptr && state_->done; }

const IoResult& IoHandle::result() const {
  assert(poll());
  return state_->result;
}

IoResult IoHandle::wait() {
  assert(valid());
  if (!state_->done) {
    auto st = state_;
    client_->engine_.run_until([st] { return st->done; });
  }
  if (!state_->done) {
    // The event queue drained without the completion firing — a protocol
    // bug; surface it instead of returning a default-OK result.
    state_->result.status =
        internal_error("operation stalled: event queue drained");
    state_->result.start = state_->start;
    state_->result.end = client_->engine_.now();
    state_->done = true;
    auto cbs = std::move(state_->callbacks);
    state_->callbacks.clear();
    for (IoCallback& cb : cbs) cb(state_->result);
    return state_->result;
  }
  client_->advance_to(state_->result.end);
  return state_->result;
}

IoHandle& IoHandle::on_complete(IoCallback cb) {
  assert(valid());
  if (state_->done) {
    cb(state_->result);
  } else {
    state_->callbacks.push_back(std::move(cb));
  }
  return *this;
}

// --- Public entry points ---------------------------------------------

IoHandle Client::submit(const IoDesc& desc) {
  auto st = std::make_shared<IoHandle::State>();
  st->start = max(desc.start, engine_.now());
  IoOptions opts = desc.opts;
  if (!opts.policy_explicit && default_policy_.has_value()) {
    opts.policy = *default_policy_;
  }
  start_op(desc.file, desc.req, opts, desc.start,
           desc.dir == IoDir::kWrite, [st](IoResult r) {
             st->result = std::move(r);
             st->done = true;
             auto cbs = std::move(st->callbacks);
             st->callbacks.clear();
             for (IoCallback& cb : cbs) cb(st->result);
           });
  return IoHandle(this, std::move(st));
}

IoResult Client::write_list(const OpenFile& file,
                            const core::ListIoRequest& req,
                            const IoOptions& opts) {
  return submit({IoDir::kWrite, file, req, opts, now_}).wait();
}

IoResult Client::read_list(const OpenFile& file,
                           const core::ListIoRequest& req,
                           const IoOptions& opts) {
  return submit({IoDir::kRead, file, req, opts, now_}).wait();
}

IoResult Client::write(const OpenFile& file, u64 file_offset, u64 addr,
                       u64 length, const IoOptions& opts) {
  core::ListIoRequest req;
  req.mem = {{addr, length}};
  req.file = {{file_offset, length}};
  return write_list(file, req, opts);
}

IoResult Client::read(const OpenFile& file, u64 file_offset, u64 addr,
                      u64 length, const IoOptions& opts) {
  core::ListIoRequest req;
  req.mem = {{addr, length}};
  req.file = {{file_offset, length}};
  return read_list(file, req, opts);
}

}  // namespace pvfsib::pvfs
