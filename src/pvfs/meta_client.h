// Client-side routing facade over the sharded metadata plane.
//
// The namespace and the version plane are hash-partitioned over N active
// managers (protocol.h shard_of/shard_of_handle). MetaRegistry is the
// cluster-side authoritative shard map: per shard, the ordered candidate
// managers (primary first, standby after) and which candidate is currently
// active; takeovers bump its version. Every client owns a MetaClient — a
// cached copy of that map seeded at mount time — and routes all metadata
// traffic through it:
//
//   * call(rq, issue): run one typed MetaRequest against the shard that
//     owns rq.name, with the data-round retry policy (timeout on a lost
//     request, capped exponential backoff, in-shard candidate rotation on
//     kFailedPrecondition redirects). A kWrongShard reply — the manager
//     reached through a stale map does not own the name — is a fast
//     redirect carrying a map refresh (pvfs.shard_redirects /
//     pvfs.shard_map_refreshes): the client re-routes by the fresh map,
//     mirroring the kFailedPrecondition re-aim path but across shards.
//     Refreshes are bounded, not at-most-once: up to
//     MigrationParams::map_refresh_attempts per call with capped backoff,
//     so a live migration/split racing the call (two map generations in
//     flight) redirects the client again instead of stranding it.
//   * authority(handle): the manager trusted for the handle's shard of the
//     version plane (mints, staleness notes, size bookkeeping). Refuses an
//     epoch-stale cached choice (pvfs.epoch_rejections) and re-targets the
//     epoch-current candidate, exactly as the single-plane
//     version_authority() did.
//
// With one shard and one manager every path collapses to the pre-sharding
// behaviour: route to shard 0, no redirects, no rotation.
#pragma once

#include <string_view>
#include <vector>

#include "common/sim_time.h"
#include "common/stats.h"
#include "ib/fabric.h"
#include "pvfs/protocol.h"

namespace pvfsib::fault {
class Injector;
}
namespace pvfsib::sim {
class Engine;
}

namespace pvfsib::pvfs {

class Manager;

// Authoritative shard map, owned by the cluster. Stand-in for the durable
// config table real PVFS2 clients fetch at mount time.
class MetaRegistry {
 public:
  struct Shard {
    // Rotation order: the primary first, its standby (if any) after.
    std::vector<Manager*> candidates;
    size_t active = 0;  // index into candidates
  };

  void add_shard(std::vector<Manager*> candidates) {
    shards_.push_back(Shard{std::move(candidates), 0});
  }
  u32 shard_count() const { return static_cast<u32>(shards_.size()); }
  const Shard& shard(u32 s) const { return shards_[s]; }
  u64 version() const { return version_; }

  // A takeover promoted candidate `active` of shard `s`; cached client maps
  // older than the new version are stale (they still converge via their own
  // timeout/redirect rotation — the bump is what redirect refreshes carry).
  void set_active(u32 s, size_t active) {
    shards_[s].active = active;
    ++version_;
  }

  // A migration cutover replaced shard `s`'s candidate list wholesale (the
  // fresh target first, the surviving standby after).
  void set_candidates(u32 s, std::vector<Manager*> candidates, size_t active) {
    shards_[s] = Shard{std::move(candidates), active};
    ++version_;
  }

  // A split grew the plane (add_shard per new shard, then one bump): cached
  // maps older than this route with the pre-split shard count and converge
  // through the wrong-shard refresh path.
  void note_resharded() { ++version_; }

 private:
  std::vector<Shard> shards_;
  u64 version_ = 1;
};

class MetaClient {
 public:
  // Seeds the cached shard map from `registry` (the free mount-time config
  // fetch). `hca` is the owning client's HCA (request source and trace
  // label); `faults` routes the retry policy (may be null). `mig` bounds
  // the wrong-shard re-refresh loop (MigrationParams defaults reproduce
  // the classic behaviour on the first redirect: immediate refresh, no
  // backoff).
  MetaClient(ib::Hca& hca, sim::Engine& engine, Stats* stats,
             fault::Injector* faults, const MetaRegistry* registry,
             MigrationParams mig = {});

  struct Outcome {
    MetaReply reply;
    // When the caller's clock should stand afterwards: reply arrival, or
    // the final timeout wait when every retry failed.
    TimePoint done = TimePoint::origin();
  };
  // Run one metadata request issued at `issue` (see file comment).
  Outcome call(const MetaRequest& rq, TimePoint issue);

  // The manager currently believed active for `name`'s shard (e.g. the one
  // whose HCA a post-remove unlink broadcast fans out from).
  Manager& route(std::string_view name);

  // Version-plane authority for `h`'s shard (see file comment).
  Manager& authority(Handle h);

  u32 shard_count() const { return static_cast<u32>(shards_.size()); }
  u64 map_version() const { return version_; }

  // Test hook: collapse the cached map to a stale single-shard view (as if
  // this client mounted before the plane was resharded). The next call for
  // a name shard 0 does not own takes the kWrongShard redirect + refresh.
  void invalidate_map();

  // Test hook: make the next `n` refresh_map() calls land the stale
  // single-shard view again instead of the registry's — two map
  // generations in flight, the race the bounded re-refresh loop exists
  // for. The n+1-th refresh sees the real registry.
  void force_stale_refreshes(u32 n) { stale_refreshes_ = n; }

  // --- Cache lease routing ----------------------------------------------
  // The client caching tier's lease revocations are routed through the
  // MetaClient: the owning Client registers its cache as the sink, the
  // Cluster attaches its LeaseBus, and every published LeaseRevoke is
  // forwarded sink-ward. Routing here (rather than bus -> cache directly)
  // keeps the revocation path on the same object that owns shard routing,
  // so epoch-bump revokes use the same shard_of/shard_of_handle planes the
  // reads they fence do. A client with caching off never sets a sink, so
  // attach subscribes nothing and the bus stays unobserved.
  void set_lease_sink(std::function<void(const LeaseRevoke&)> sink) {
    lease_sink_ = std::move(sink);
  }
  void attach_lease_bus(LeaseBus* bus) {
    if (bus == nullptr || !lease_sink_) return;
    bus->subscribe([this](const LeaseRevoke& rv) { lease_sink_(rv); });
  }

 private:
  struct CachedShard {
    std::vector<Manager*> candidates;
    size_t active = 0;
  };

  Manager& active_of(u32 shard) {
    CachedShard& cs = shards_[shard];
    return *cs.candidates[cs.active];
  }
  // Re-seed the cached map from the registry (free: redirect replies carry
  // the map, and the mount-time fetch happened before the timeline starts).
  void refresh_map();
  bool faulty() const;

  ib::Hca& hca_;
  sim::Engine& engine_;
  Stats* stats_;
  fault::Injector* faults_;
  const MetaRegistry* registry_;
  MigrationParams mig_;
  std::vector<CachedShard> shards_;
  u64 version_ = 0;
  u32 stale_refreshes_ = 0;  // test hook (force_stale_refreshes)
  std::function<void(const LeaseRevoke&)> lease_sink_;  // cache revocations
};

}  // namespace pvfsib::pvfs
