// The PVFS I/O daemon. One per I/O node: owns the node's local file system,
// its HCA, a per-client staging buffer pool, a sieve buffer, and the disk
// service queue. This is where Active Data Sieving runs: every incoming
// round is either serviced access-by-access or sieved, according to the
// cost model (Section 5).
//
// The iod is passive with respect to the event engine — the client-side
// state machine invokes write_round()/read_round() at the simulated arrival
// times and the iod returns completion times, queueing its disk work on the
// node's disk resource.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "common/config.h"
#include "core/ads.h"
#include "core/transfer.h"
#include "disk/local_fs.h"
#include "ib/fabric.h"
#include "pvfs/protocol.h"
#include "sim/resource.h"
#include "vmem/address_space.h"

namespace pvfsib::fault {
class Injector;
}

namespace pvfsib::sim {
class Engine;
}

namespace pvfsib::pvfs {

class Manager;

class Iod {
 public:
  // `faults` (optional) contributes degraded-disk slowdown windows; crash
  // windows are enforced at the client (requests to a down iod are lost).
  Iod(u32 id, u32 client_count, const ModelConfig& cfg, ib::Fabric& fabric,
      Stats* stats, fault::Injector* faults = nullptr);

  // Local stripe file for a handle, created on first use.
  disk::LocalFile& file(Handle h);

  // Drop the local stripe file for a removed handle; returns the cost.
  Duration remove_file(Handle h);

  // One staging buffer of `client`'s connection pool. The pool holds
  // `staging_slots()` buffers per client (pipeline_depth * replication
  // factor) so pipelined rounds in flight — and concurrent primary/backup
  // chains under replication — each own a distinct landing area.
  core::StagingBuffer& staging(u32 client, u32 slot);
  // Slot-0 convenience (the only slot when pipelining is off).
  core::StagingBuffer& staging(u32 client) { return staging(client, 0); }
  u32 staging_slots() const { return slots_per_client_; }

  // --- Write round -----------------------------------------------------
  // The packed data stream for `r` is in staging(r.client, r.slot) at
  // `data_ready`. Performs the disk phase (separate accesses or sieved
  // read-modify-write) and returns the time the round is durably done
  // (post-fsync when sync). When `disk_cost` is non-null it receives the
  // pure service time (excluding disk-queue wait). When `ack_version` is
  // non-null it receives the stripe-header version the ack carries back
  // (after merging r.version; 0 for unversioned files). When
  // `epoch_rejected` is non-null it reports whether the round's version
  // was epoch-fenced out of the header (the ack tells the client to
  // re-mint and replay under the current epoch).
  TimePoint write_round(const RoundRequest& r, TimePoint data_ready,
                        Duration* disk_cost = nullptr,
                        u64* ack_version = nullptr,
                        bool* epoch_rejected = nullptr);

  // --- Read round -------------------------------------------------------
  struct ReadService {
    Status status;
    // kClientPull: when the packed staging buffer is ready for pulling.
    // kFastBounce/kDirectGather: when the last byte landed at the client.
    TimePoint ready = TimePoint::origin();
    u64 bytes = 0;
    // Server-side service time spent on the disk phase (reads, sieve
    // copies), excluding queueing and the return-path network time.
    Duration disk_cost = Duration::zero();
    // Stripe-header version of the serving local file (0 when unversioned):
    // a trailing version tells the client this replica is stale.
    u64 version = 0;

    bool ok() const { return status.is_ok(); }
  };
  // Service a read round starting (at the earliest) at `start`. For
  // kFastBounce/kDirectGather the iod pushes data to the client itself;
  // `client_hca`/`client_dest`/`client_rkey` describe the destination (the
  // bounce buffer or the contiguous user buffer).
  ReadService read_round(const RoundRequest& r, TimePoint start,
                         ReadReturn path, ib::Hca* client_hca,
                         u64 client_dest, u32 client_rkey);

  // --- Version plane ----------------------------------------------------
  // Stripe-header version of the local file keyed `h` (0 = unversioned).
  // Under replication each local file (a primary handle or a per-stripe
  // shadow handle) belongs to exactly one chain, so one header per local
  // handle is unambiguous. Kept as if durable, like applied_seq_.
  u64 stripe_version(Handle h) const;

  // All stripe headers of this iod (local-file key -> version), the
  // takeover scan's raw material. Deterministic map order.
  const std::map<Handle, u64>& stripe_headers() const {
    return stripe_version_;
  }

  // Manager-epoch fence, one cell per metadata shard. A takeover sweeps
  // the shard's new epoch to every iod; write rounds whose version was
  // minted under an older epoch of their handle's shard still land their
  // bytes but are refused the header merge (pvfs.epoch_rejections), so a
  // zombie primary's mints can never mark this replica current. Shard
  // defaults to 0, the only shard of an unsharded plane.
  void note_manager_epoch(u64 epoch, u32 shard = 0) {
    if (shard >= manager_epoch_.size()) manager_epoch_.resize(shard + 1, 0);
    manager_epoch_[shard] = std::max(manager_epoch_[shard], epoch);
  }
  u64 manager_epoch(u32 shard = 0) const {
    return shard < manager_epoch_.size() ? manager_epoch_[shard] : 0;
  }

  // A split cutover doubled the metadata plane: retag this iod's private
  // config copy so handle->shard routing (epoch fences, resync notes) uses
  // the grown count. Swept together with the new shards' epoch cells in
  // the same engine instant, so no request ever routes by a half-updated
  // plane.
  void set_metadata_shards(u32 n) { cfg_.pvfs.metadata_shards = n; }

  // Apply a repair/resync write directly: scatter `stream` into the local
  // file at `accesses` and merge `version` into the stripe header. Bypasses
  // the staging-slot pool (repairs are out-of-band of the round protocol
  // and must not collide with in-flight rounds' slots); the disk work still
  // serializes through the disk queue. Returns the completion time.
  TimePoint apply_repair(Handle h, const ExtentList& accesses,
                         std::span<const std::byte> stream, u64 version,
                         TimePoint at);

  // Serve one resync pull: pread `rq.max_bytes` (capped by EOF) at
  // `rq.offset` from the local file keyed rq.peer_handle into `dst`.
  Timed<u64> serve_resync(const ResyncRequest& rq, std::span<std::byte> dst);

  // --- Data integrity (stripe block checksums) --------------------------
  // Every applied write (rounds, repairs, resync pulls) stamps an FNV-1a 64
  // checksum per fixed-size block (ReplicationParams::integrity_block_bytes)
  // of the touched byte ranges into the local stripe header (format v2; the
  // version map above is format v1 and untouched, so takeover header scans
  // are unchanged). Stamping and verify-on-read are charged zero simulated
  // time — the hash overlaps the disk phase on real hardware — which keeps
  // fault-free timelines byte-identical to the pre-checksum model.

  // Scheduled kBitFlip hook (Cluster wires it via install_corruption_hooks):
  // flip one stored bit of one nonempty local file, both chosen by the
  // injector's seeded draws. Silent: no header, no cost, no ack.
  void inject_bit_flip(TimePoint at);

  // Start the background scrubber (Cluster::start_scrub): a rate-limited
  // tick chain (scrub_interval apart, bounded by `until` so engine.run()
  // still terminates) that walks the local stripe files scrub_chunk_bytes
  // per tick, re-reads them through the disk queue, verifies block
  // checksums, cross-checks the stripe header against the shard manager's
  // staleness map (catching acked-but-never-applied lost writes), reports
  // corrupt/stale copies to the manager and kicks the resync puller to
  // heal them. Requires configure_resync wiring; no-op without it.
  void start_scrub(TimePoint until);

  // --- Background re-replication ---------------------------------------
  // Wire the resync scanner (Cluster does this when factor > 1 and
  // ReplicationParams::resync): the engine to schedule pull rounds on, the
  // per-shard staleness-map authorities to target with (index = metadata
  // shard; a single-entry vector on an unsharded plane), and the peer iods
  // (indexed by physical id) to pull from.
  void configure_resync(sim::Engine* engine,
                        std::vector<Manager*> authorities,
                        std::vector<Iod*> peers);
  // A takeover re-points one shard's staleness-map authority at the
  // promoted standby; a migration cutover at the adopted target (split-born
  // shards grow the vector on demand). No-op unless configure_resync ran.
  void set_resync_authority(u32 shard, Manager* manager);
  // Restart hook (fault::Injector::install_restart_hooks): scan the
  // staleness map and pull every stale stripe from a current peer in
  // rate-limited rounds. No-op unless configure_resync ran.
  void on_restart(TimePoint t);

  ib::Hca& hca() { return hca_; }
  disk::LocalFs& fs() { return fs_; }
  sim::Resource& disk_queue() { return disk_queue_; }
  core::ActiveDataSieving& ads() { return ads_; }
  u32 id() const { return id_; }

  // Flush + drop the node's page cache (benchmark "without cache" setup);
  // time is not charged to anyone (setup step).
  void drop_caches() { fs_.drop_caches(); }

 private:
  struct DiskPhase {
    Duration cost = Duration::zero();
    Status status;
  };

  // Execute the disk work for a write round against the packed stream in
  // `stream` (real bytes), charging LocalFile costs.
  DiskPhase write_disk_phase(const RoundRequest& r,
                             std::span<const std::byte> stream,
                             TimePoint when);

  // Execute the disk work for a read round in "separate" mode: pack pieces
  // into staging(client) and return the cost.
  DiskPhase read_separate_phase(const RoundRequest& r, u64 staging_addr);

  // `cost` stretched by the fault plane's degraded-disk factor at `at`.
  Duration disk_scaled(Duration cost, TimePoint at) const;

  // Has the write round carrying `seq` already been applied on `slot` of
  // `client`'s connection? Updates the high-water mark when new.
  bool already_applied(u32 client, u32 slot, u64 seq);

  // One in-progress restart resync: the target list and the cursor within
  // it. Shared with the engine events driving the chunk pulls.
  struct ResyncState;
  // Pull the next chunk (or finish the current stripe / the whole scan).
  void resync_step(std::shared_ptr<ResyncState> st);

  // --- Integrity internals ----------------------------------------------
  // FNV-1a 64 over a block's stored bytes.
  static u64 block_checksum(std::span<const std::byte> s);
  // Restamp every checksum block overlapping `accesses` — plus, when the
  // apply grew the file past `pre_size`, the zero-filled growth (whose
  // blocks changed extent) — from the file's current contents.
  void stamp_round(Handle h, const ExtentList& accesses, u64 pre_size);
  // Recompute the stamped checksums of every block overlapping `accesses`;
  // false on any mismatch. Blocks without a stamp (format-v1 headers from
  // before the apply) are trusted, so old content stays readable.
  bool verify_ranges(Handle h, const ExtentList& accesses);
  // Corruption appliers (write_round, after stamping the intended bytes):
  // garble a suffix of the round's stored byte ranges / flip one stored bit
  // inside them. The injector's draws pick the split point and the bit.
  void corrupt_torn(Handle h, const ExtentList& accesses, TimePoint at);
  void corrupt_flip(Handle h, const ExtentList& accesses, TimePoint at);
  // One running scrub: the byte cursor over files_ and the tick bound.
  struct ScrubState;
  void scrub_tick(std::shared_ptr<ScrubState> st);

  u32 id_;
  ModelConfig cfg_;
  ib::Fabric& fabric_;
  Stats* stats_;
  fault::Injector* faults_;
  vmem::AddressSpace as_;
  ib::Hca hca_;
  disk::LocalFs fs_;
  sim::Resource disk_queue_;
  core::ActiveDataSieving ads_;

  // client_count * slots_per_client_ buffers, grouped by client:
  // staging_[client * slots_per_client_ + slot].
  std::vector<core::StagingBuffer> staging_;
  u32 slots_per_client_ = 1;
  u64 sieve_addr_ = 0;  // sieve buffer (RMW scratch), registered
  u32 sieve_key_ = 0;
  std::map<Handle, u32> files_;  // handle -> local fd
  // Highest applied round_seq per (client, slot): the replay-dedupe log.
  // Kept as if durable (a crash-restarted iod still recognises replays).
  std::map<std::pair<u32, u32>, u64> applied_seq_;
  // Stripe-header versions per local file (see stripe_version()). Only ever
  // populated by versioned (replicated) writes; empty at factor 1.
  std::map<Handle, u64> stripe_version_;
  // Per-block checksums per local file (header format v2): block index ->
  // FNV-1a 64 of the block's stored bytes. Kept as if durable, beside the
  // version headers. Every applied write stamps; reads and the scrubber
  // verify.
  std::map<Handle, std::map<u64, u64>> block_sums_;
  // Highest manager epoch this iod has been told about, per metadata shard
  // (empty/0 until a takeover sweep; the fence in write_round only engages
  // for versioned rounds that carry an older, non-zero epoch of their
  // handle's shard). Grown on demand.
  std::vector<u64> manager_epoch_;
  // Resync wiring (empty unless Cluster enabled background re-replication).
  // One staleness-map authority per metadata shard.
  sim::Engine* engine_ = nullptr;
  std::vector<Manager*> managers_;
  std::vector<Iod*> peers_;
};

}  // namespace pvfsib::pvfs
