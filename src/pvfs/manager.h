// The PVFS metadata manager: cluster-wide namespace, striping parameters.
// It never participates in data transfers (Section 2.1); its cost is the
// control round-trip on create/open/stat.
#pragma once

#include <map>
#include <string>

#include "common/config.h"
#include "common/status.h"
#include "ib/fabric.h"
#include "pvfs/protocol.h"
#include "vmem/address_space.h"

namespace pvfsib::pvfs {

class Manager {
 public:
  Manager(const ModelConfig& cfg, ib::Fabric& fabric, Stats* stats);

  // Metadata operations; `from` is the requesting client's HCA and `ready`
  // its request time. Each returns the completion time of the round-trip
  // alongside the result.
  // `base_iod` = kAutoBase lets the manager rotate bases across files so
  // small files spread over the I/O servers (PVFS's default placement).
  static constexpr u32 kAutoBase = ~0u;
  Timed<Result<FileMeta>> create(ib::Hca& from, TimePoint ready,
                                 const std::string& name, u64 stripe_size,
                                 u32 iod_count, u32 base_iod = kAutoBase);
  Timed<Result<FileMeta>> open(ib::Hca& from, TimePoint ready,
                               const std::string& name);
  Timed<Status> remove(ib::Hca& from, TimePoint ready,
                       const std::string& name);

  // Size bookkeeping (piggybacked on I/O completion in real PVFS; free).
  void note_written(Handle h, u64 end_offset);
  Result<FileMeta> stat(const std::string& name) const;

  ib::Hca& hca() { return hca_; }

 private:
  // Control round-trip helper: request to manager + reply back.
  Duration round_trip(ib::Hca& from, TimePoint ready, TimePoint* done);

  ModelConfig cfg_;
  ib::Fabric& fabric_;
  vmem::AddressSpace as_;
  ib::Hca hca_;
  std::map<std::string, FileMeta> by_name_;
  std::map<Handle, std::string> by_handle_;
  Handle next_handle_ = 1;
};

}  // namespace pvfsib::pvfs
