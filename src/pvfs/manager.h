// The PVFS metadata manager: cluster-wide namespace, striping parameters.
// It never participates in data transfers (Section 2.1); its cost is the
// control round-trip on create/open/stat.
#pragma once

#include <map>
#include <string>

#include "common/config.h"
#include "common/status.h"
#include "ib/fabric.h"
#include "pvfs/protocol.h"
#include "vmem/address_space.h"

namespace pvfsib::fault {
class Injector;
}

namespace pvfsib::pvfs {

class Manager {
 public:
  // `cluster_iod_count` is the number of physical I/O servers behind the
  // manager; it bounds replica placement (a file may stripe over fewer).
  // 0 (unknown) only forbids replicated creates. `faults` routes metadata
  // requests through the fault plane (may be null).
  Manager(const ModelConfig& cfg, ib::Fabric& fabric, Stats* stats,
          u32 cluster_iod_count = 0, fault::Injector* faults = nullptr);

  // Metadata operations; `from` is the requesting client's HCA and `ready`
  // its request time. Each returns the completion time of the round-trip
  // alongside the result. When the fault plane swallows the request the
  // result is kUnavailable ("metadata request lost") and the namespace is
  // untouched; the client's retry path resends after a timeout.
  // `base_iod` = kAutoBase lets the manager rotate bases across files so
  // small files spread over the I/O servers (PVFS's default placement).
  static constexpr u32 kAutoBase = ~0u;
  Timed<Result<FileMeta>> create(ib::Hca& from, TimePoint ready,
                                 const std::string& name, u64 stripe_size,
                                 u32 iod_count, u32 base_iod = kAutoBase,
                                 u32 replication_factor = 1);
  Timed<Result<FileMeta>> open(ib::Hca& from, TimePoint ready,
                               const std::string& name);
  Timed<Status> remove(ib::Hca& from, TimePoint ready,
                       const std::string& name);

  // Rotated primary/backup placement: logical stripe server k's replica j
  // lands on physical iod (base + k + j) mod physical_count (chained
  // declustering, so each iod backs up its predecessor's primaries).
  // Fails when factor < 1, factor > physical_count, or physical_count == 0
  // with factor > 1.
  static Result<std::vector<std::vector<u32>>> place_replicas(
      u32 base, u32 stripe_width, u32 factor, u32 physical_count);

  // Size bookkeeping (piggybacked on I/O completion in real PVFS; free).
  void note_written(Handle h, u64 end_offset);
  Result<FileMeta> stat(const std::string& name) const;

  ib::Hca& hca() { return hca_; }

 private:
  // Control round-trip helper: request to manager + reply back. Sets
  // *lost when the fault plane swallowed the request before it reached
  // the manager (the reply leg never runs; the caller must return
  // kUnavailable without touching the namespace).
  Duration round_trip(ib::Hca& from, TimePoint ready, TimePoint* done,
                      bool* lost);

  ModelConfig cfg_;
  ib::Fabric& fabric_;
  u32 cluster_iod_count_;
  fault::Injector* faults_;
  vmem::AddressSpace as_;
  ib::Hca hca_;
  std::map<std::string, FileMeta> by_name_;
  std::map<Handle, std::string> by_handle_;
  Handle next_handle_ = 1;
};

}  // namespace pvfsib::pvfs
