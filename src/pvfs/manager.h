// The PVFS metadata manager: cluster-wide namespace, striping parameters.
// It never participates in data transfers (Section 2.1); its cost is the
// control round-trip on create/open/stat.
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "common/config.h"
#include "common/status.h"
#include "ib/fabric.h"
#include "pvfs/protocol.h"
#include "sim/resource.h"
#include "vmem/address_space.h"

namespace pvfsib::fault {
class Injector;
}

namespace pvfsib::pvfs {

// Construction parameters for a Manager (designated-initializer friendly).
struct ManagerOptions {
  // Physical I/O servers behind the metadata plane; bounds replica
  // placement (a file may stripe over fewer). 0 (unknown) only forbids
  // replicated creates.
  u32 cluster_iod_count = 0;
  // Routes metadata requests through the fault plane (may be null).
  fault::Injector* faults = nullptr;
  // Labels the manager's HCA ("mgr" for a lone primary, "mgr2" for its
  // standby, "mgr<k>"/"mgr<k>b" per shard when the plane is sharded).
  std::string name = "mgr";
  // Which hash shard of the namespace/version plane this manager owns, out
  // of `shard_count` active managers. The defaults are the classic
  // unsharded plane: one manager owning everything.
  u32 shard_id = 0;
  u32 shard_count = 1;
};

class Manager {
 public:
  Manager(const ModelConfig& cfg, ib::Fabric& fabric, Stats* stats,
          ManagerOptions opts = {});

  // Metadata operations; `from` is the requesting client's HCA and `ready`
  // its request time. Each returns the completion time of the round-trip
  // alongside the result. When the fault plane swallows the request the
  // result is kUnavailable ("metadata request lost") and the namespace is
  // untouched; the client's retry path resends after a timeout. A request
  // for a name outside this manager's shard is answered kWrongShard (fast
  // redirect; MetaClient refreshes its map and re-routes).
  // `base_iod` = kAutoBase lets the manager rotate bases across files so
  // small files spread over the I/O servers (PVFS's default placement).
  static constexpr u32 kAutoBase = kAutoBaseIod;

  // Typed dispatcher over create/open/stat/remove — the wire entry point
  // MetaClient routes through. stat is open-shaped (same round-trip, no
  // client-side state).
  Timed<MetaReply> serve(ib::Hca& from, TimePoint ready,
                         const MetaRequest& rq);
  Timed<Result<FileMeta>> create(ib::Hca& from, TimePoint ready,
                                 const std::string& name, u64 stripe_size,
                                 u32 iod_count, u32 base_iod = kAutoBase,
                                 u32 replication_factor = 1);
  Timed<Result<FileMeta>> open(ib::Hca& from, TimePoint ready,
                               const std::string& name);
  Timed<Status> remove(ib::Hca& from, TimePoint ready,
                       const std::string& name);

  // Rotated primary/backup placement: logical stripe server k's replica j
  // lands on physical iod (base + k + j) mod physical_count (chained
  // declustering, so each iod backs up its predecessor's primaries).
  // Fails when factor < 1, factor > physical_count, or physical_count == 0
  // with factor > 1.
  static Result<std::vector<std::vector<u32>>> place_replicas(
      u32 base, u32 stripe_width, u32 factor, u32 physical_count);

  // Size bookkeeping (piggybacked on I/O completion in real PVFS; free).
  void note_written(Handle h, u64 end_offset);
  Result<FileMeta> stat(const std::string& name) const;

  // --- Version plane ----------------------------------------------------
  // Per-(handle, logical stripe) version sequence plus the staleness map:
  // which version each replica of the chain is recorded to hold. Like
  // note_written these are free piggyback calls (version allocation rides
  // the write round, ack notes ride the reply) — they add no wire traffic,
  // so factor-1 and fault-free timelines are untouched.

  // Mint the next version for a replicated write round on (h, stripe).
  u64 allocate_stripe_version(Handle h, u32 stripe);
  // Record that physical iod `iod_id` acked/served (h, stripe) at `version`
  // (max semantics; versions only move forward). No-op for unknown files
  // (handle-liveness fence: a post-settle late ack arriving after remove()
  // dropped the range must not resurrect the entry) or iods outside the
  // stripe's replica set. `note_epoch` is the manager epoch the version was
  // minted under (0 = trusted, e.g. read observations of applied headers);
  // notes minted under a stale epoch are rejected (pvfs.epoch_rejections)
  // so a zombie primary's in-flight writes cannot mark replicas current.
  void note_replica_version(Handle h, u32 stripe, u32 iod_id, u64 version,
                            u64 note_epoch = 0);

  struct StripeVersionView {
    bool known = false;  // false: no versioned write ever touched the stripe
    u64 latest = 0;
    // Recorded version per replica position (parallel to
    // FileMeta.replicas[stripe]); a replica trailing `latest` is stale. A
    // replica flagged corrupt reports 0 here — whatever version its header
    // claims, its bytes are untrustworthy, so placement and read-repair
    // must treat it as holding nothing.
    std::vector<u64> replica_versions;
  };
  StripeVersionView stripe_versions(Handle h, u32 stripe) const;

  // --- Cache write-notice plane -----------------------------------------
  // Per-(handle, logical stripe) write sequence for the client caching
  // tier (src/cache/). Cache-enabled clients bump it at write submission
  // and validate cached extents against it at hit time — a free host-side
  // piggyback exactly like the version plane, covering replication factor
  // 1 where no stripe versions are minted. Cache-off clients never call
  // either, so the plane stays empty and timelines untouched. The state is
  // deliberately manager-resident soft state: a takeover or migration
  // restarts sequences at zero, and the epoch-bump lease revoke drops the
  // affected shard's cached entries so the restart cannot re-validate
  // anything stale.
  u64 bump_data_seq(Handle h, u32 stripe) { return ++data_seq_[{h, stripe}]; }
  u64 data_seq(Handle h, u32 stripe) const {
    const auto it = data_seq_.find({h, stripe});
    return it == data_seq_.end() ? 0 : it->second;
  }

  // --- Cache lease plane -------------------------------------------------
  // Revocation bus membership (see protocol.h LeaseBus). Attached by the
  // Cluster; a detached manager (standalone tests, pre-PR builds) simply
  // never revokes. create()/remove() publish on their success paths.
  void attach_lease_bus(LeaseBus* bus) { lease_bus_ = bus; }

  // --- Integrity plane --------------------------------------------------
  // A reader's checksum verification (or the scrubber) caught physical iod
  // `iod_id` serving corrupt bytes for (h, stripe): flag the copy. Fenced
  // exactly like note_replica_version — unknown handles (a late report
  // racing remove()) and iods outside the replica set must not materialize
  // stripe state, which is what keeps the scrubber from resurrecting a
  // removed file's stripes.
  void note_replica_corrupt(Handle h, u32 stripe, u32 iod_id);

  // Direct header observation disproving the map: iod `iod_id`'s stripe
  // header for (h, stripe) reads `version`, *lower* than what the map
  // recorded (a lost write — the iod acked a round it never applied).
  // Unlike note_replica_version this downgrades: the header is physical
  // evidence, the old note was a lie. Same liveness/membership fencing.
  void note_replica_observed(Handle h, u32 stripe, u32 iod_id, u64 version);

  // A completed resync pull rebuilt (h, stripe) on `iod_id` at `version`
  // from an intact peer: record the version (max semantics) and clear the
  // corrupt flag — the one event that does (pvfs.corruptions_repaired).
  // Partial heals (read-repair rounds) deliberately clear nothing.
  void note_replica_resynced(Handle h, u32 stripe, u32 iod_id, u64 version);

  // Every (handle, stripe) whose copy on physical iod `iod_id` lives under
  // local-file key `local_handle` (one stripe for a shadow-handle backup;
  // every stripe primaried on the iod for a primary file), with the map's
  // view of it — the scrubber's cross-check input. Empty for unknown or
  // unreplicated handles (same liveness fence as the notes).
  struct LocalStripeView {
    Handle handle = 0;
    u32 stripe = 0;
    bool known = false;  // stripe has recorded version state
    u64 latest = 0;
    u64 recorded = 0;  // this copy's recorded version (0 when corrupt)
  };
  std::vector<LocalStripeView> local_stripes(Handle local_handle,
                                             u32 iod_id) const;

  // Resync targeting: every stripe whose copy on physical iod `iod` is
  // recorded stale, with the chain peers recorded current (candidate pull
  // sources, chain order) and everyone's local-file keys. Deterministic
  // order (map iteration).
  struct ResyncTarget {
    Handle handle = 0;
    u32 stripe = 0;
    u64 latest = 0;          // the version the stripe must reach
    Handle local_handle = 0;  // the stale iod's local-file key
    std::vector<u32> peers;
    std::vector<Handle> peer_handles;
  };
  std::vector<ResyncTarget> resync_targets(u32 iod) const;

  ib::Hca& hca() { return hca_; }

  // --- Shard identity ---------------------------------------------------
  u32 shard_id() const { return shard_id_; }
  u32 shard_count() const { return shard_count_; }
  // Does this manager's shard own `name`?
  bool owns(std::string_view name) const {
    return shard_of(name, shard_count_) == shard_id_;
  }

  // --- Live shard migration (Cluster::migrate_shard / split_shards) ------
  // Ownership of a shard's namespace + version plane moves between managers
  // while clients race: the source keeps serving while its state streams,
  // then a single fenced cutover copies the final delta, bumps the shard
  // epoch and demotes the source into a redirector. The snapshot/adopt pair
  // below is that final copy; the rate-limited stream rounds model its
  // bandwidth on the fabric (Cluster drives them), so no mid-stream
  // mutation can be lost — whatever the source served up to the cutover
  // instant is in the cutover copy by construction.

  struct StripeState {
    u64 latest = 0;
    std::vector<u64> replica;  // recorded version per replica position
    // Copies caught serving bytes that fail checksum verification. A
    // corrupt copy is always a resync target and never a pull source,
    // whatever version it claims; only note_replica_resynced clears it.
    std::vector<bool> corrupt;
  };

  // Everything a shard authority owns: the namespace entries, the
  // version/staleness/corrupt maps, the handle-mint cursor and the mint
  // floor. The unit the migration stream and the cutover copy move.
  struct ShardSnapshot {
    std::map<std::string, FileMeta> by_name;
    std::map<Handle, std::string> by_handle;
    std::map<std::pair<Handle, u32>, StripeState> stripe_state;
    Handle next_handle = 1;
    u64 mint_floor = 0;
  };

  // The slice of this manager's state owned by shard `shard_id` out of
  // `shard_count`: a plain migration exports (shard_id(), shard_count())
  // — everything — while a K->2K split exports the sibling half
  // (split_sibling(s, K), 2K). Names filter by shard_of, handles (and
  // their stripe state) by shard_of_handle; next_handle/mint_floor are
  // copied verbatim and re-aligned by adopt_shard.
  ShardSnapshot export_shard(u32 shard_id, u32 shard_count) const;

  // Wire-size estimate of export_shard's result, the denominator of the
  // migration stream's rate limit.
  u64 shard_state_bytes(u32 shard_id, u32 shard_count) const;

  // Cutover (target side): install `snap`, take identity (shard_id,
  // shard_count), attach to the shard's epoch cell as the active primary —
  // the cell was bumped just before, so every in-flight mint the source
  // stamped is already fenced — and re-align the handle-mint cursor into
  // this shard's residue class (a split sibling inherits a cursor minting
  // in the source's class; stepping it by the old count restores
  // collision-freedom, see protocol.h split_sibling).
  void adopt_shard(ShardSnapshot snap, u32 shard_id, u32 shard_count,
                   ManagerEpoch* cell);

  // Cutover (source side of a plain migration): stop serving and become a
  // redirector. Every request for a name this manager nominally owns is
  // answered kWrongShard (pvfs.wrong_shard_during_migration) — the one
  // reply that makes a racing client refresh its shard map and converge on
  // the target; kFailedPrecondition would only rotate it between equally
  // stale candidates.
  void retire_migrated();
  bool migrated_out() const { return migrated_out_; }

  // Cutover (source side of a split): drop the sibling half that moved —
  // names, handles, stripe state — retag to the doubled shard count and
  // re-align the mint cursor. Requests for moved names now take the normal
  // !owns() kWrongShard path, counted as migration redirects
  // (pvfs.wrong_shard_during_migration) since the staleness is
  // reshard-induced.
  void drop_shard_complement(u32 new_shard_count);

  // A split retags the old shards' standbys to the doubled count without
  // touching their (empty-until-takeover) state.
  void retag_shard(u32 shard_count) { shard_count_ = shard_count; }

  // Does this manager's shard own `h`'s slice of the version plane? False
  // once the shard migrated away — the authority() cache check that sends
  // stale clients back to the registry before they mint from a retired
  // manager (whose dropped namespace would silently mint version 0).
  bool owns_handle(Handle h) const {
    return !migrated_out_ && shard_of_handle(h, shard_count_) == shard_id_;
  }

  // --- Manager epoch / standby takeover ----------------------------------
  // Attach this manager to the cluster-wide epoch cell (a stand-in for a
  // durable epoch register). `active` marks the current authority; the
  // active-at-attach manager is the *primary* — only it is subject to
  // kManagerCrash windows — and the standby stays inactive until
  // take_over(). Without a cell the manager behaves exactly as before
  // (epoch 1, always active: single-manager runs are untouched).
  void attach_epoch(ManagerEpoch* cell, bool active);
  u64 epoch() const { return epoch_; }
  bool active() const { return active_; }
  // True when the cluster epoch moved past this manager's: it was demoted
  // by a takeover it never saw (zombie primary). Checked against the shared
  // cell on every metadata request, the way a lease check would be.
  bool epoch_stale() const {
    return epoch_cell_ != nullptr && epoch_ < epoch_cell_->value;
  }

  // One iod stripe header observed during a takeover scan: the physical iod,
  // the local-file key it was found under (primary copies live under the
  // file handle, backups under backup_handle) and the recorded version.
  struct HeaderObservation {
    u32 iod_id = 0;
    Handle local_handle = 0;
    u64 version = 0;
  };
  // Standby takeover. Bumps the cluster epoch (fencing every in-flight mint
  // and note stamped by the old primary), adopts the namespace from the
  // demoted manager (file metadata proper is durable in PVFS — only the
  // staleness map is manager-resident soft state), rebuilds the staleness
  // map conservatively from the scanned iod headers (a replica is current
  // only if its header provably carries the highest version observed for
  // the stripe; everything else becomes a resync target), and resumes
  // minting above the highest version observed in any header (the mint
  // floor, applied to stripes with no surviving header evidence — rebuilt
  // stripes mint above their own observed maximum already).
  void take_over(const Manager& durable,
                 const std::vector<HeaderObservation>& headers, TimePoint at);

 private:
  // Control round-trip helper: request to manager + reply back. Sets
  // *lost when the fault plane swallowed the request before it reached
  // the manager (the reply leg never runs; the caller must return
  // kUnavailable without touching the namespace).
  Duration round_trip(ib::Hca& from, TimePoint ready, TimePoint* done,
                      bool* lost);

  const FileMeta* meta_of(Handle h) const;

  // kWrongShard reply for `name`, counted as a migration redirect when the
  // name was lost to a completed migration or split (stale clients
  // converging through the refresh path).
  Status wrong_shard_redirect(const std::string& name) const;

  // Step the mint cursor into this shard's residue class after a split
  // (no-op when already aligned, as after a plain migration).
  void align_next_handle();

  // The replica-set position of `iod_id` in (h, stripe)'s chain, with the
  // membership + liveness fencing every staleness note shares; npos when
  // the handle is dead, unreplicated, or the iod is outside the set.
  size_t replica_pos(Handle h, u32 stripe, u32 iod_id) const;

  ModelConfig cfg_;
  ib::Fabric& fabric_;
  Stats* stats_;
  u32 cluster_iod_count_;
  fault::Injector* faults_;
  u32 shard_id_;
  u32 shard_count_;
  vmem::AddressSpace as_;
  ib::Hca hca_;
  // Metadata service CPU (only queues when PvfsParams::meta_cpu_queue).
  sim::Resource cpu_;
  ManagerEpoch* epoch_cell_ = nullptr;
  u64 epoch_ = 1;
  bool active_ = true;
  bool primary_ = true;  // subject to kManagerCrash windows
  u64 mint_floor_ = 0;   // takeover: fresh stripes mint above this
  // Post-cutover redirector state: the shard moved to another manager
  // (retire_migrated), or a split halved this shard's name space
  // (drop_shard_complement records the pre-split count so reshard-induced
  // redirects are distinguishable from plain stale-mount ones).
  bool migrated_out_ = false;
  u32 pre_split_count_ = 0;
  std::map<std::string, FileMeta> by_name_;
  std::map<Handle, std::string> by_handle_;
  std::map<std::pair<Handle, u32>, StripeState> stripe_state_;
  // Shard s mints handles s+1, s+1+N, s+1+2N, ... (N = shard_count), so
  // shard_of_handle recovers the owner without a lookup. N=1 counts 1,2,3…
  // exactly as before.
  Handle next_handle_;
  // Cache write-notice plane: per-(handle, stripe) write sequence numbers.
  // Soft state — intentionally not part of ShardSnapshot (see bump_data_seq
  // comment: epoch-bump revokes make the post-migration reset safe).
  std::map<std::pair<Handle, u32>, u64> data_seq_;
  // Lease revocation bus (owned by the Cluster); null when caching is off
  // or the manager runs standalone in a unit test.
  LeaseBus* lease_bus_ = nullptr;
};

}  // namespace pvfsib::pvfs
