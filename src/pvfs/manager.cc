#include "pvfs/manager.h"

#include "fault/injector.h"
#include "sim/trace.h"

namespace pvfsib::pvfs {

namespace {
Status meta_lost_status() { return unavailable("metadata request lost"); }
// A demoted (zombie) or not-yet-promoted manager answers fast with a
// redirect instead of silently timing out; the client re-targets the
// request at the other manager (pvfs.meta_failovers).
Status manager_inactive_status() {
  return failed_precondition("manager not active");
}
// A manager reached with a name outside its shard answers fast with a
// redirect carrying the fresh shard map; the client re-routes by it
// (pvfs.shard_redirects).
Status wrong_shard_status(u32 owner) {
  return wrong_shard("name owned by shard " + std::to_string(owner));
}
}  // namespace

Manager::Manager(const ModelConfig& cfg, ib::Fabric& fabric, Stats* stats,
                 ManagerOptions opts)
    : cfg_(cfg),
      fabric_(fabric),
      stats_(stats),
      cluster_iod_count_(opts.cluster_iod_count),
      faults_(opts.faults),
      shard_id_(opts.shard_id),
      shard_count_(opts.shard_count == 0 ? 1 : opts.shard_count),
      hca_(opts.name, as_, cfg.reg, stats),
      cpu_(opts.name + ".cpu"),
      next_handle_(Handle{opts.shard_id} + 1) {}

void Manager::attach_epoch(ManagerEpoch* cell, bool active) {
  epoch_cell_ = cell;
  epoch_ = cell->value;
  active_ = active;
  primary_ = active;
}

Duration Manager::round_trip(ib::Hca& from, TimePoint ready, TimePoint* done,
                             bool* lost) {
  const TimePoint at_mgr = fabric_.send_control(
      from, hca_, cfg_.pvfs.request_msg_bytes, ready, ib::ControlKind::kRequest);
  if (faults_ != nullptr && faults_->enabled() &&
      faults_->meta_request_lost(at_mgr, primary_, shard_id_)) {
    // The request wire time was spent but the manager never saw it; the
    // caller notices via timeout. `done` is meaningless to a client that
    // received nothing, so report only the request leg.
    *lost = true;
    *done = at_mgr;
    return at_mgr - ready;
  }
  *lost = false;
  // Metadata lookup cost on the manager. With meta_cpu_queue the lookup
  // serializes through the manager's CPU (busy-until queueing — the
  // contention the metadata-storm bench measures); otherwise it is a fixed
  // latency and concurrent requests overlap freely, as before.
  const Duration service = Duration::us(5.0);
  const TimePoint replied = cfg_.pvfs.meta_cpu_queue
                                ? cpu_.acquire(at_mgr, service)
                                : at_mgr + service;
  *done = fabric_.send_control(hca_, from, cfg_.pvfs.reply_msg_bytes, replied,
                               ib::ControlKind::kReply);
  return *done - ready;
}

Result<std::vector<std::vector<u32>>> Manager::place_replicas(
    u32 base, u32 stripe_width, u32 factor, u32 physical_count) {
  if (factor < 1) return invalid_argument("replication factor must be >= 1");
  if (physical_count == 0) {
    return invalid_argument("replica placement needs a known cluster size");
  }
  if (factor > physical_count) {
    return invalid_argument(
        "replication factor " + std::to_string(factor) + " exceeds " +
        std::to_string(physical_count) + " physical iods");
  }
  std::vector<std::vector<u32>> out(stripe_width);
  for (u32 k = 0; k < stripe_width; ++k) {
    out[k].reserve(factor);
    for (u32 j = 0; j < factor; ++j) {
      out[k].push_back((base + k + j) % physical_count);
    }
  }
  return out;
}

Status Manager::wrong_shard_redirect(const std::string& name) const {
  // A redirect caused by a completed reshard — the shard moved away
  // (migrated_out_), or a split stripped this shard of the name — is the
  // convergence signal stale clients ride; count it separately from plain
  // stale-mount redirects so the benches can see the redirect storm a
  // migration causes. The reply itself is byte-identical either way.
  const bool lost_to_reshard =
      migrated_out_ || (pre_split_count_ != 0 &&
                        shard_of(name, pre_split_count_) == shard_id_);
  if (lost_to_reshard && stats_ != nullptr) {
    stats_->add(stat::kPvfsWrongShardDuringMigration);
  }
  return wrong_shard_status(shard_of(name, shard_count_));
}

Timed<Result<FileMeta>> Manager::create(ib::Hca& from, TimePoint ready,
                                        const std::string& name,
                                        u64 stripe_size, u32 iod_count,
                                        u32 base_iod, u32 replication_factor) {
  TimePoint done;
  bool lost = false;
  const Duration cost = round_trip(from, ready, &done, &lost);
  if (lost) return {Result<FileMeta>(meta_lost_status()), cost};
  // A migrated-out source answers kWrongShard even though it is inactive:
  // only the wrong-shard reply drives a map refresh, and the refreshed map
  // reaches the target. kFailedPrecondition would rotate a stale client
  // between the retired source and its equally stale standby forever.
  if (migrated_out_) {
    return {Result<FileMeta>(wrong_shard_redirect(name)), cost};
  }
  if (!active_ || epoch_stale()) {
    return {Result<FileMeta>(manager_inactive_status()), cost};
  }
  if (!owns(name)) {
    return {Result<FileMeta>(wrong_shard_redirect(name)), cost};
  }
  if (by_name_.count(name) != 0) {
    return {Result<FileMeta>(already_exists("file exists: " + name)), cost};
  }
  if (stripe_size == 0 || iod_count == 0) {
    return {Result<FileMeta>(invalid_argument("bad striping parameters")),
            cost};
  }
  FileMeta meta;
  meta.handle = next_handle_;
  next_handle_ += shard_count_;
  meta.name = name;
  meta.stripe_size = stripe_size;
  meta.iod_count = iod_count;
  // Auto placement rotates the base with the handle; an explicit base is
  // kept verbatim (the client wraps it over its physical server count).
  meta.base_iod = base_iod == kAutoBase
                      ? static_cast<u32>(meta.handle % iod_count)
                      : base_iod;
  meta.replication_factor = replication_factor;
  if (replication_factor > 1) {
    Result<std::vector<std::vector<u32>>> placed = place_replicas(
        meta.base_iod, iod_count, replication_factor, cluster_iod_count_);
    if (!placed.is_ok()) return {Result<FileMeta>(placed.status()), cost};
    meta.replicas = std::move(placed.value());
  }
  by_name_[name] = meta;
  by_handle_[meta.handle] = name;
  if (lease_bus_ != nullptr) {
    // A newly minted handle can reuse a name whose stale attr entry some
    // client still caches (remove + recreate); revoke the name so the next
    // open re-fetches the fresh handle instead of serving the dead one.
    lease_bus_->publish(LeaseRevoke{LeaseRevokeReason::kCreated, shard_id_,
                                    shard_count_, name, meta.handle});
  }
  return {Result<FileMeta>(meta), cost};
}

Timed<Result<FileMeta>> Manager::open(ib::Hca& from, TimePoint ready,
                                      const std::string& name) {
  TimePoint done;
  bool lost = false;
  const Duration cost = round_trip(from, ready, &done, &lost);
  if (lost) return {Result<FileMeta>(meta_lost_status()), cost};
  if (migrated_out_) {
    return {Result<FileMeta>(wrong_shard_redirect(name)), cost};
  }
  if (!active_ || epoch_stale()) {
    return {Result<FileMeta>(manager_inactive_status()), cost};
  }
  if (!owns(name)) {
    return {Result<FileMeta>(wrong_shard_redirect(name)), cost};
  }
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return {Result<FileMeta>(not_found("no such file: " + name)), cost};
  }
  return {Result<FileMeta>(it->second), cost};
}

Timed<Status> Manager::remove(ib::Hca& from, TimePoint ready,
                              const std::string& name) {
  TimePoint done;
  bool lost = false;
  const Duration cost = round_trip(from, ready, &done, &lost);
  if (lost) return {meta_lost_status(), cost};
  if (migrated_out_) return {wrong_shard_redirect(name), cost};
  if (!active_ || epoch_stale()) {
    return {manager_inactive_status(), cost};
  }
  if (!owns(name)) {
    return {wrong_shard_redirect(name), cost};
  }
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return {not_found("no such file: " + name), cost};
  }
  const Handle h = it->second.handle;
  by_handle_.erase(h);
  by_name_.erase(it);
  stripe_state_.erase(stripe_state_.lower_bound({h, 0}),
                      stripe_state_.upper_bound({h, ~0u}));
  data_seq_.erase(data_seq_.lower_bound({h, 0}),
                  data_seq_.upper_bound({h, ~0u}));
  if (lease_bus_ != nullptr) {
    lease_bus_->publish(LeaseRevoke{LeaseRevokeReason::kRemoved, shard_id_,
                                    shard_count_, name, h});
  }
  return {Status::ok(), cost};
}

Timed<MetaReply> Manager::serve(ib::Hca& from, TimePoint ready,
                                const MetaRequest& rq) {
  MetaReply rep;
  switch (rq.op) {
    case MetaOp::kCreate: {
      Timed<Result<FileMeta>> r =
          create(from, ready, rq.name, rq.stripe_size, rq.iod_count,
                 rq.base_iod, rq.replication_factor);
      rep.status = r.value.is_ok() ? Status::ok() : r.value.status();
      if (r.value.is_ok()) rep.meta = std::move(r.value).value();
      return {std::move(rep), r.cost};
    }
    case MetaOp::kOpen:
    case MetaOp::kStat: {
      Timed<Result<FileMeta>> r = open(from, ready, rq.name);
      rep.status = r.value.is_ok() ? Status::ok() : r.value.status();
      if (r.value.is_ok()) rep.meta = std::move(r.value).value();
      return {std::move(rep), r.cost};
    }
    case MetaOp::kRemove: {
      Timed<Status> r = remove(from, ready, rq.name);
      rep.status = std::move(r.value);
      return {std::move(rep), r.cost};
    }
  }
  rep.status = internal_error("unknown metadata op");
  return {std::move(rep), Duration::zero()};
}

void Manager::note_written(Handle h, u64 end_offset) {
  auto it = by_handle_.find(h);
  if (it == by_handle_.end()) return;
  FileMeta& meta = by_name_.at(it->second);
  meta.logical_size = std::max(meta.logical_size, end_offset);
}

Result<FileMeta> Manager::stat(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return not_found("no such file: " + name);
  return it->second;
}

// --- Version plane ---------------------------------------------------------

const FileMeta* Manager::meta_of(Handle h) const {
  auto it = by_handle_.find(h);
  if (it == by_handle_.end()) return nullptr;
  return &by_name_.at(it->second);
}

u64 Manager::allocate_stripe_version(Handle h, u32 stripe) {
  const FileMeta* meta = meta_of(h);
  if (meta == nullptr || meta->replication_factor <= 1) return 0;
  StripeState& st = stripe_state_[{h, stripe}];
  if (st.replica.empty()) {
    st.replica.resize(meta->replication_factor, 0);
    // Post-takeover, a stripe with no surviving header evidence mints above
    // the highest version observed in *any* header so a fresh sequence can
    // never collide with the old primary's in-flight mints. Rebuilt stripes
    // already continue above their own observed maximum; forcing the global
    // floor onto them would spuriously mark their current replicas stale.
    st.latest = std::max(st.latest, mint_floor_);
  }
  return ++st.latest;
}

void Manager::note_replica_version(Handle h, u32 stripe, u32 iod_id,
                                   u64 version, u64 note_epoch) {
  if (version == 0) return;
  if (note_epoch != 0 && note_epoch < epoch_) {
    // The version was minted by a manager this one has superseded; marking
    // the replica current on its word could hide a stripe the takeover
    // rebuild decided needs resync. The fenced ack's bytes still landed —
    // resync or read-repair will reconcile them.
    if (stats_ != nullptr) stats_->add(stat::kPvfsEpochRejections);
    return;
  }
  const FileMeta* meta = meta_of(h);
  if (meta == nullptr || stripe >= meta->replicas.size()) return;
  const std::vector<u32>& set = meta->replicas[stripe];
  for (size_t j = 0; j < set.size(); ++j) {
    if (set[j] == iod_id) {
      // The entry is created only after the replica-set membership check:
      // a note from an iod outside the set — or a post-settle late ack
      // arriving after remove() dropped the range (caught above by the
      // meta_of liveness fence) — must not materialize stripe state.
      StripeState& st = stripe_state_[{h, stripe}];
      if (st.replica.empty()) st.replica.resize(set.size(), 0);
      st.replica[j] = std::max(st.replica[j], version);
      // A replica cannot hold a version that was never minted; keep the
      // sequence monotone even if notes and allocations ever race.
      st.latest = std::max(st.latest, version);
      return;
    }
  }
}

void Manager::take_over(const Manager& durable,
                        const std::vector<HeaderObservation>& headers,
                        TimePoint at) {
  // Fence first: every mint and note stamped by the old primary now carries
  // a stale epoch and will be rejected by iods and by this manager.
  if (epoch_cell_ != nullptr) epoch_ = ++epoch_cell_->value;
  active_ = true;
  // Adopt the namespace. File metadata proper (names, handles, striping,
  // replica placement) is durable in PVFS; only the staleness map below is
  // manager-resident soft state that must be reconstructed.
  by_name_ = durable.by_name_;
  by_handle_ = durable.by_handle_;
  next_handle_ = durable.next_handle_;
  // Conservative rebuild from the scanned stripe headers: a replica is
  // credited exactly the version its header proves it applied; anything
  // trailing the highest version observed for its stripe is a resync
  // target. Headers of deleted files decode to no live meta and are
  // skipped (they still raise the mint floor, which only needs "some
  // version up to v was minted somewhere").
  stripe_state_.clear();
  mint_floor_ = 0;
  for (const HeaderObservation& obs : headers) {
    mint_floor_ = std::max(mint_floor_, obs.version);
    if (obs.version == 0) continue;
    const bool backup = (obs.local_handle >> 63) != 0;
    const Handle h =
        backup ? (obs.local_handle & ((Handle{1} << 48) - 1)) : obs.local_handle;
    const FileMeta* meta = meta_of(h);
    if (meta == nullptr || meta->replication_factor <= 1) continue;
    for (u32 k = 0; k < meta->replicas.size(); ++k) {
      // A backup header names its stripe in the shadow handle; a primary
      // header is the file's local data file, shared by every stripe whose
      // primary lands on that iod, and credits each of them (the same
      // conservative per-local-file semantics write acks already have).
      const std::vector<u32>& set = meta->replicas[k];
      for (size_t j = 0; j < set.size(); ++j) {
        if (set[j] != obs.iod_id) continue;
        const Handle key = j == 0 ? h : backup_handle(h, k);
        if (key != obs.local_handle) continue;
        StripeState& st = stripe_state_[{h, k}];
        if (st.replica.empty()) st.replica.resize(set.size(), 0);
        st.replica[j] = std::max(st.replica[j], obs.version);
        st.latest = std::max(st.latest, obs.version);
      }
    }
  }
  sim::Trace::instance().emitf(
      at, hca_.name(), "takeover epoch=%llu headers=%zu stripes=%zu floor=%llu",
      static_cast<unsigned long long>(epoch_), headers.size(),
      stripe_state_.size(), static_cast<unsigned long long>(mint_floor_));
}

// --- Live shard migration ---------------------------------------------------

Manager::ShardSnapshot Manager::export_shard(u32 shard_id,
                                             u32 shard_count) const {
  ShardSnapshot snap;
  for (const auto& [name, meta] : by_name_) {
    // A pre-split file's two routing keys can disagree after a split: its
    // name re-hashes under the new count while its minted handle keeps the
    // old residue class. The namespace plane routes by name, but the
    // version plane (allocate_stripe_version / note_replica_version) looks
    // FileMeta up by handle — so the snapshot carries the meta wherever
    // EITHER plane will need it. owns()/owns_handle() gate which plane each
    // holder actually serves; the extra copy never answers namespace ops.
    if (shard_of(name, shard_count) != shard_id &&
        shard_of_handle(meta.handle, shard_count) != shard_id) {
      continue;
    }
    snap.by_name.emplace(name, meta);
    snap.by_handle.emplace(meta.handle, name);
  }
  for (const auto& [key, st] : stripe_state_) {
    if (shard_of_handle(key.first, shard_count) != shard_id) continue;
    snap.stripe_state.emplace(key, st);
  }
  snap.next_handle = next_handle_;
  snap.mint_floor = mint_floor_;
  return snap;
}

u64 Manager::shard_state_bytes(u32 shard_id, u32 shard_count) const {
  // Wire-size estimate: a FileMeta entry plus its name, and a StripeState
  // row per (handle, stripe). Only the total matters (it paces the stream);
  // the cutover copies the real structures host-side.
  u64 bytes = 0;
  for (const auto& [name, meta] : by_name_) {
    if (shard_of(name, shard_count) != shard_id) continue;
    bytes += 64 + name.size() + 16 * meta.replicas.size();
  }
  for (const auto& [key, st] : stripe_state_) {
    if (shard_of_handle(key.first, shard_count) != shard_id) continue;
    bytes += 32 + 9 * st.replica.size();
  }
  return bytes;
}

void Manager::align_next_handle() {
  if (shard_of_handle(next_handle_, shard_count_) != shard_id_) {
    // A split sibling inherits a cursor minting in the source's residue
    // class (the two classes differ by the old count = shard_count_ / 2);
    // one step restores collision-freedom: every future mint lands at or
    // above the inherited cursor, past everything already minted.
    next_handle_ += shard_count_ / 2;
  }
}

void Manager::adopt_shard(ShardSnapshot snap, u32 shard_id, u32 shard_count,
                          ManagerEpoch* cell) {
  shard_id_ = shard_id;
  shard_count_ = shard_count;
  by_name_ = std::move(snap.by_name);
  by_handle_ = std::move(snap.by_handle);
  stripe_state_ = std::move(snap.stripe_state);
  next_handle_ = snap.next_handle;
  mint_floor_ = snap.mint_floor;
  align_next_handle();
  // The cell was bumped by the cutover before adoption, so attaching makes
  // this manager the epoch-current authority and every mint the source
  // still has in flight stale — the same fence a takeover uses.
  epoch_cell_ = cell;
  epoch_ = cell->value;
  active_ = true;
  primary_ = true;
  migrated_out_ = false;
}

void Manager::retire_migrated() {
  active_ = false;
  // No longer the shard's primary: kManagerCrash windows now belong to the
  // target, and the retired box keeps answering redirects even while the
  // shard's (new) primary is in a crash window.
  primary_ = false;
  migrated_out_ = true;
}

void Manager::drop_shard_complement(u32 new_shard_count) {
  pre_split_count_ = shard_count_;
  shard_count_ = new_shard_count;
  for (auto it = by_name_.begin(); it != by_name_.end();) {
    // Mirror of export_shard's union filter: keep the meta if this manager
    // still serves either routing plane for the file — the namespace (by
    // name hash) or the version plane (by handle residue).
    if (shard_of(it->first, new_shard_count) != shard_id_ &&
        shard_of_handle(it->second.handle, new_shard_count) != shard_id_) {
      by_handle_.erase(it->second.handle);
      it = by_name_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = stripe_state_.begin(); it != stripe_state_.end();) {
    if (shard_of_handle(it->first.first, new_shard_count) != shard_id_) {
      it = stripe_state_.erase(it);
    } else {
      ++it;
    }
  }
  align_next_handle();
}

Manager::StripeVersionView Manager::stripe_versions(Handle h,
                                                    u32 stripe) const {
  StripeVersionView v;
  auto it = stripe_state_.find({h, stripe});
  if (it == stripe_state_.end()) return v;
  v.known = true;
  v.latest = it->second.latest;
  v.replica_versions = it->second.replica;
  // A corrupt copy holds nothing, whatever its header claims: reporting 0
  // steers read placement away from it and makes read-repair rewrite the
  // ranges it serves wrong.
  const std::vector<bool>& corrupt = it->second.corrupt;
  for (size_t j = 0; j < v.replica_versions.size() && j < corrupt.size();
       ++j) {
    if (corrupt[j]) v.replica_versions[j] = 0;
  }
  return v;
}

// --- Integrity plane --------------------------------------------------------

size_t Manager::replica_pos(Handle h, u32 stripe, u32 iod_id) const {
  const FileMeta* meta = meta_of(h);
  if (meta == nullptr || stripe >= meta->replicas.size()) {
    return static_cast<size_t>(-1);
  }
  const std::vector<u32>& set = meta->replicas[stripe];
  for (size_t j = 0; j < set.size(); ++j) {
    if (set[j] == iod_id) return j;
  }
  return static_cast<size_t>(-1);
}

void Manager::note_replica_corrupt(Handle h, u32 stripe, u32 iod_id) {
  const size_t pos = replica_pos(h, stripe, iod_id);
  if (pos == static_cast<size_t>(-1)) return;
  const size_t n = meta_of(h)->replicas[stripe].size();
  StripeState& st = stripe_state_[{h, stripe}];
  if (st.replica.empty()) st.replica.resize(n, 0);
  if (st.corrupt.size() < n) st.corrupt.resize(n, false);
  st.corrupt[pos] = true;
}

void Manager::note_replica_observed(Handle h, u32 stripe, u32 iod_id,
                                    u64 version) {
  const size_t pos = replica_pos(h, stripe, iod_id);
  if (pos == static_cast<size_t>(-1)) return;
  const size_t n = meta_of(h)->replicas[stripe].size();
  StripeState& st = stripe_state_[{h, stripe}];
  if (st.replica.empty()) st.replica.resize(n, 0);
  // Downgrade on purpose: the header is physical evidence; the higher
  // recorded version came from an ack whose write never hit the platter.
  // `latest` stays — the minted sequence is still the repair target.
  st.replica[pos] = version;
  st.latest = std::max(st.latest, version);
}

void Manager::note_replica_resynced(Handle h, u32 stripe, u32 iod_id,
                                    u64 version) {
  const size_t pos = replica_pos(h, stripe, iod_id);
  if (pos == static_cast<size_t>(-1)) return;
  const size_t n = meta_of(h)->replicas[stripe].size();
  StripeState& st = stripe_state_[{h, stripe}];
  if (st.replica.empty()) st.replica.resize(n, 0);
  if (pos < st.corrupt.size() && st.corrupt[pos]) {
    st.corrupt[pos] = false;
    if (stats_ != nullptr) stats_->add(stat::kPvfsCorruptionsRepaired);
  }
  st.replica[pos] = std::max(st.replica[pos], version);
  st.latest = std::max(st.latest, version);
}

std::vector<Manager::LocalStripeView> Manager::local_stripes(
    Handle local_handle, u32 iod_id) const {
  std::vector<LocalStripeView> out;
  const bool backup = (local_handle >> 63) != 0;
  const Handle h =
      backup ? (local_handle & ((Handle{1} << 48) - 1)) : local_handle;
  const FileMeta* meta = meta_of(h);
  if (meta == nullptr || meta->replication_factor <= 1) return out;
  for (u32 k = 0; k < meta->replicas.size(); ++k) {
    const std::vector<u32>& set = meta->replicas[k];
    for (size_t j = 0; j < set.size(); ++j) {
      if (set[j] != iod_id) continue;
      // Same key-matching rule as the takeover header scan: a backup
      // header names its stripe in the shadow handle; a primary local file
      // is shared by every stripe primaried on the iod.
      const Handle key = j == 0 ? h : backup_handle(h, k);
      if (key != local_handle) continue;
      LocalStripeView v;
      v.handle = h;
      v.stripe = k;
      const auto it = stripe_state_.find({h, k});
      if (it != stripe_state_.end()) {
        v.known = true;
        v.latest = it->second.latest;
        v.recorded =
            j < it->second.replica.size() ? it->second.replica[j] : 0;
        if (j < it->second.corrupt.size() && it->second.corrupt[j]) {
          v.recorded = 0;
        }
      }
      out.push_back(v);
    }
  }
  return out;
}

std::vector<Manager::ResyncTarget> Manager::resync_targets(u32 iod) const {
  std::vector<ResyncTarget> out;
  for (const auto& [key, st] : stripe_state_) {
    const auto& [h, stripe] = key;
    const FileMeta* meta = meta_of(h);
    if (meta == nullptr || stripe >= meta->replicas.size()) continue;
    const std::vector<u32>& set = meta->replicas[stripe];
    size_t pos = set.size();
    for (size_t j = 0; j < set.size() && j < st.replica.size(); ++j) {
      if (set[j] == iod) pos = j;
    }
    const auto flagged = [&st](size_t j) {
      return j < st.corrupt.size() && st.corrupt[j];
    };
    // A corrupt copy is always a resync target, whatever its header claims.
    if (pos == set.size() ||
        (!flagged(pos) && st.replica[pos] >= st.latest)) {
      continue;
    }
    ResyncTarget t;
    t.handle = h;
    t.stripe = stripe;
    t.latest = st.latest;
    t.local_handle = pos == 0 ? h : backup_handle(h, stripe);
    for (size_t j = 0; j < set.size() && j < st.replica.size(); ++j) {
      if (j != pos && !flagged(j) && st.replica[j] >= st.latest) {
        t.peers.push_back(set[j]);
        t.peer_handles.push_back(j == 0 ? h : backup_handle(h, stripe));
      }
    }
    if (!t.peers.empty()) out.push_back(std::move(t));
  }
  return out;
}

}  // namespace pvfsib::pvfs
