#include "pvfs/manager.h"

namespace pvfsib::pvfs {

Manager::Manager(const ModelConfig& cfg, ib::Fabric& fabric, Stats* stats)
    : cfg_(cfg), fabric_(fabric), hca_("mgr", as_, cfg.reg, stats) {}

Duration Manager::round_trip(ib::Hca& from, TimePoint ready, TimePoint* done) {
  const TimePoint at_mgr = fabric_.send_control(
      from, hca_, cfg_.pvfs.request_msg_bytes, ready, ib::ControlKind::kRequest);
  // Metadata lookup cost on the manager.
  const TimePoint replied = at_mgr + Duration::us(5.0);
  *done = fabric_.send_control(hca_, from, cfg_.pvfs.reply_msg_bytes, replied,
                               ib::ControlKind::kReply);
  return *done - ready;
}

Timed<Result<FileMeta>> Manager::create(ib::Hca& from, TimePoint ready,
                                        const std::string& name,
                                        u64 stripe_size, u32 iod_count,
                                        u32 base_iod) {
  TimePoint done;
  const Duration cost = round_trip(from, ready, &done);
  if (by_name_.count(name) != 0) {
    return {Result<FileMeta>(already_exists("file exists: " + name)), cost};
  }
  if (stripe_size == 0 || iod_count == 0) {
    return {Result<FileMeta>(invalid_argument("bad striping parameters")),
            cost};
  }
  FileMeta meta;
  meta.handle = next_handle_++;
  meta.name = name;
  meta.stripe_size = stripe_size;
  meta.iod_count = iod_count;
  // Auto placement rotates the base with the handle; an explicit base is
  // kept verbatim (the client wraps it over its physical server count).
  meta.base_iod = base_iod == kAutoBase
                      ? static_cast<u32>(meta.handle % iod_count)
                      : base_iod;
  by_name_[name] = meta;
  by_handle_[meta.handle] = name;
  return {Result<FileMeta>(meta), cost};
}

Timed<Result<FileMeta>> Manager::open(ib::Hca& from, TimePoint ready,
                                      const std::string& name) {
  TimePoint done;
  const Duration cost = round_trip(from, ready, &done);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return {Result<FileMeta>(not_found("no such file: " + name)), cost};
  }
  return {Result<FileMeta>(it->second), cost};
}

Timed<Status> Manager::remove(ib::Hca& from, TimePoint ready,
                              const std::string& name) {
  TimePoint done;
  const Duration cost = round_trip(from, ready, &done);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return {not_found("no such file: " + name), cost};
  }
  by_handle_.erase(it->second.handle);
  by_name_.erase(it);
  return {Status::ok(), cost};
}

void Manager::note_written(Handle h, u64 end_offset) {
  auto it = by_handle_.find(h);
  if (it == by_handle_.end()) return;
  FileMeta& meta = by_name_.at(it->second);
  meta.logical_size = std::max(meta.logical_size, end_offset);
}

Result<FileMeta> Manager::stat(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return not_found("no such file: " + name);
  return it->second;
}

}  // namespace pvfsib::pvfs
