// Wires a whole simulated cluster together: event engine, fabric, the
// sharded metadata plane (N active managers, optional per-shard standbys),
// M compute (client) nodes and K I/O nodes — the in-process equivalent of
// the paper's 8-node InfiniBand testbed.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "common/config.h"
#include "common/stats.h"
#include "fault/injector.h"
#include "ib/fabric.h"
#include "pvfs/client.h"
#include "pvfs/iod.h"
#include "pvfs/manager.h"
#include "pvfs/meta_client.h"
#include "sim/engine.h"

namespace pvfsib::pvfs {

class Cluster {
 public:
  // Fluent topology builder:
  //   Cluster c(cfg, Cluster::Topology{}.clients(4).iods(8)
  //                                     .metadata_shards(4).standbys());
  // Unset knobs defer to the config (PvfsParams::metadata_shards,
  // FaultConfig::standby_takeover), so Topology{}.clients(n).iods(m) is
  // exactly the classic two-int constructor.
  struct Topology {
    u32 client_count = 1;
    u32 iod_count = 1;
    u32 shard_count = 0;  // 0: take ModelConfig's pvfs.metadata_shards
    std::optional<bool> with_standbys;  // unset: fault.standby_takeover

    Topology& clients(u32 n) {
      client_count = n;
      return *this;
    }
    Topology& iods(u32 n) {
      iod_count = n;
      return *this;
    }
    Topology& metadata_shards(u32 k) {
      shard_count = k;
      return *this;
    }
    Topology& standbys(bool v = true) {
      with_standbys = v;
      return *this;
    }
  };

  Cluster(const ModelConfig& cfg, const Topology& topo);
  // Classic shape: n clients, m iods, topology knobs from the config.
  Cluster(const ModelConfig& cfg, u32 client_count, u32 iod_count)
      : Cluster(cfg, Topology{}.clients(client_count).iods(iod_count)) {}

  Client& client(u32 i) { return *clients_.at(i); }
  Iod& iod(u32 i) { return *iods_.at(i); }
  // The primary manager of `shard` (historic accessor; most callers want
  // the shard's current authority, active_manager()).
  Manager& manager(u32 shard = 0) { return *managers_.at(shard); }
  // The manager currently holding `shard`'s epoch: the primary until a
  // standby takeover, the standby after.
  Manager& active_manager(u32 shard = 0) { return *active_.at(shard); }
  // The shard's standby manager, or null when the plane runs without one.
  Manager* standby(u32 shard = 0) { return standbys_.at(shard).get(); }
  const ManagerEpoch& manager_epoch(u32 shard = 0) const {
    return epochs_.at(shard);
  }
  // Authoritative shard map the clients' MetaClients seed from.
  const MetaRegistry& registry() const { return registry_; }
  u32 metadata_shards() const { return static_cast<u32>(managers_.size()); }
  sim::Engine& engine() { return engine_; }
  ib::Fabric& fabric() { return *fabric_; }
  fault::Injector& faults() { return *faults_; }
  Stats& stats() { return stats_; }
  const ModelConfig& config() const { return cfg_; }
  u32 client_count() const { return static_cast<u32>(clients_.size()); }
  u32 iod_count() const { return static_cast<u32>(iods_.size()); }

  // Drop every iod's page cache (benchmark "without cache" setup) and
  // every client's caching tier.
  void drop_all_caches() {
    for (auto& iod : iods_) iod->drop_caches();
    for (auto& c : clients_) c->data_cache().drop_all();
  }

  // The cluster-wide lease revocation bus for the client caching tier.
  // Managers publish create/remove revokes on it; the cluster publishes
  // epoch-bump revokes at takeover/migration/split cutovers; cache-enabled
  // clients subscribe through their MetaClients. With caching off nothing
  // subscribes and publication is a free no-op.
  LeaseBus& lease_bus() { return lease_bus_; }

  // Cluster-wide default transfer policy. Applied by every client to
  // operations whose IoOptions did not pick a policy explicitly (via
  // with_policy()/with_scheme()); pass nullopt to clear.
  void set_default_policy(std::optional<core::TransferPolicy> p) {
    for (auto& c : clients_) c->set_default_policy(p);
  }

  // Run the engine until every scheduled event has fired; returns the
  // latest event time (the makespan of whatever was launched).
  TimePoint run() { return engine_.run(); }

  // --- Rolling interval counters (measurement plane) ----------------------
  // Start (or restart) rolling interval sampling of the cluster-wide Stats:
  // a window closes every `window` of virtual time from now until `until`
  // (the final window may be partial), so per-window throughput and
  // server-side rates are visible mid-run instead of only as one end-of-run
  // aggregate. Purely observational — runs that never call this schedule
  // nothing and stay byte-identical.
  IntervalSeries& sample_intervals(Duration window, TimePoint until);
  const IntervalSeries* intervals() const { return intervals_.get(); }

  // Standby takeover of one metadata shard at `at` (normally fired by the
  // injector's takeover hooks, `manager_takeover_delay` after the shard's
  // kManagerCrash window opens; tests may call it directly). Bumps the
  // shard's epoch, scans every iod's stripe headers *belonging to the
  // shard* to rebuild the staleness map conservatively, sweeps the new
  // epoch to the shard's cell on all iods (the zombie-primary fence),
  // promotes the standby in the registry (stale client maps converge via
  // their own rotation), re-points the shard's resync authority and kicks
  // a staleness sweep on every iod so rebuilt resync targets actually
  // heal. Idempotent: a second call while the standby already holds the
  // epoch is a no-op.
  void manager_takeover(u32 shard, TimePoint at);
  void manager_takeover(TimePoint at) { manager_takeover(0, at); }

  // --- Live shard migration / resharding ---------------------------------
  // Online ownership movement in the metadata plane (ARCHITECTURE.md "Live
  // resharding"): the source manager keeps serving while its shard's
  // namespace + version/staleness/corrupt maps and mint floor stream to the
  // target in rate-limited rounds (MigrationParams::stream_bandwidth /
  // round_bytes, pvfs.migration_rounds); after the last round plus
  // cutover_delay a single fenced cutover — one engine instant, so racing
  // clients see either the old owner or the new one, never a half-moved
  // shard — copies the final delta, bumps the shard's epoch (fencing every
  // in-flight mint the source stamped, exactly like a takeover), flips the
  // MetaRegistry and sweeps the epoch to every iod. Crash-safe at every
  // step: a source crash or takeover mid-stream and a target crash
  // (FaultKind::kMigrationTargetCrash) abort cleanly back to the source
  // (pvfs.migration_aborts); a post-cutover zombie source is a pure
  // kWrongShard redirector (pvfs.wrong_shard_during_migration) that stale
  // clients converge through. Runs that never call these schedule nothing
  // and stay byte-identical.

  // Move `shard` onto a freshly provisioned manager ("mgr<s>m"), online.
  // Returns false — and starts nothing — when the shard is invalid or a
  // migration/split already has it in flight. On success the target
  // becomes manager(shard)/active_manager(shard) at cutover
  // (pvfs.shard_migrations) and the retired source lives on as a
  // redirector for stale clients.
  bool migrate_shard(u32 shard, TimePoint at);

  // Grow the plane K -> 2K online: every shard s streams its sibling half
  // (protocol.h split_sibling) to a new manager concurrently, and when the
  // last stream drains, one atomic cutover installs all K new shards —
  // epoch cells, managers, standbys (when the cluster has them), registry
  // entries, iod routing — at a single engine instant
  // (pvfs.shard_splits). Per-pair flips would split-brain names between
  // two managers routing with different shard counts; all-at-once cannot.
  // Any child abort aborts the whole split. Returns false when a
  // migration or split is already in flight.
  bool split_shards(TimePoint at);

  // Any migration stream or split currently in flight?
  bool migration_inflight() const;

  // Start the background scrubber on every iod: a rate-limited periodic
  // sweep (ReplicationParams::scrub_interval / scrub_chunk_bytes) that
  // reads local stripe data back, verifies block checksums, cross-checks
  // headers against the shard authority's staleness map, and kicks resync
  // for anything found rotten. Ticks stop after `until` so engine.run()
  // still terminates. No-op unless replication.factor > 1, resync and
  // scrub are all enabled — a run that never opts in schedules nothing and
  // stays byte-identical.
  void start_scrub(TimePoint until);

 private:
  // One in-flight shard migration stream (a split runs one per old shard).
  struct MigrationState;
  // Coordination for a K -> 2K split's K concurrent streams.
  struct SplitGroup;

  // Provision a fresh manager for `shard` of a `shard_count`-wide plane.
  std::unique_ptr<Manager> provision_manager(const std::string& name,
                                             u32 shard, u32 shard_count);
  // One rate-limited stream round (self-rescheduling); checks the abort
  // conditions first.
  void migration_round(std::shared_ptr<MigrationState> st);
  // Has this migration hit an abort condition (source crash window,
  // takeover raced the stream, scheduled target crash) at `at`?
  bool migration_aborted(MigrationState& st, TimePoint at);
  void abort_migration(std::shared_ptr<MigrationState> st, TimePoint at);
  // A stream finished draining: cut over (single move) or join the split
  // group barrier.
  void migration_streamed(std::shared_ptr<MigrationState> st);
  void migrate_cutover(std::shared_ptr<MigrationState> st);
  void split_cutover(std::shared_ptr<SplitGroup> group);
  // Last child of an aborted split wound down: clear the flags, count one
  // abort, leave the plane at the old count.
  void wind_down_split(std::shared_ptr<SplitGroup> group, TimePoint at);
  // Post-cutover plumbing shared by move and split: sweep the shard's
  // epoch to every iod and re-point its resync authority.
  void repoint_shard(u32 shard, Manager* owner);
  // Kick a staleness sweep on every iod (adopted staleness maps should
  // heal without waiting for the next crash-restart hook).
  void kick_resync(TimePoint at);

  ModelConfig cfg_;
  Stats stats_;
  sim::Engine engine_;
  // Declared before the fabric/iods/clients that hold raw pointers to it.
  std::unique_ptr<fault::Injector> faults_;
  std::unique_ptr<ib::Fabric> fabric_;
  // Per-shard epoch cells. Managers hold pointers into it, so growth must
  // not relocate: a deque's push_back (split_shards installing the new
  // shards' cells) leaves existing cells in place, which a vector's would
  // not.
  std::deque<ManagerEpoch> epochs_;
  std::vector<std::unique_ptr<Manager>> managers_;   // per-shard primary
  std::vector<std::unique_ptr<Manager>> standbys_;   // per-shard, may be null
  std::vector<Manager*> active_;                     // per-shard authority
  // Sources retired by a completed migration: kept alive as kWrongShard
  // redirectors because stale client maps still hold raw pointers to them.
  std::vector<std::unique_ptr<Manager>> retired_;
  // Per-shard "a migration stream has this shard" flags, and whether a
  // split owns all of them.
  std::vector<char> migrating_;
  bool split_inflight_ = false;
  u32 cluster_iod_count_ = 0;  // provisioning migration targets
  bool with_standbys_ = false;  // split-born shards get standbys too
  // Declared before clients_ (each Client's MetaClient seeds from it and
  // keeps the pointer for redirect-driven refreshes).
  MetaRegistry registry_;
  // Declared before managers_/clients_ users attach to it; owns nothing
  // but subscription closures.
  LeaseBus lease_bus_;
  std::vector<std::unique_ptr<Iod>> iods_;
  std::vector<std::unique_ptr<Client>> clients_;
  // Rolling interval sampler (sample_intervals); null until requested.
  std::unique_ptr<IntervalSeries> intervals_;
};

}  // namespace pvfsib::pvfs
