// Wires a whole simulated cluster together: event engine, fabric, metadata
// manager, N compute (client) nodes and M I/O nodes — the in-process
// equivalent of the paper's 8-node InfiniBand testbed.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/config.h"
#include "common/stats.h"
#include "fault/injector.h"
#include "ib/fabric.h"
#include "pvfs/client.h"
#include "pvfs/iod.h"
#include "pvfs/manager.h"
#include "sim/engine.h"

namespace pvfsib::pvfs {

class Cluster {
 public:
  Cluster(const ModelConfig& cfg, u32 client_count, u32 iod_count);

  Client& client(u32 i) { return *clients_.at(i); }
  Iod& iod(u32 i) { return *iods_.at(i); }
  // The primary manager (historic accessor; most callers want the version
  // plane's current authority, active_manager()).
  Manager& manager() { return *manager_; }
  // The manager currently holding the cluster epoch: the primary until a
  // standby takeover, the standby after.
  Manager& active_manager() { return *active_manager_; }
  // The standby manager, or null when FaultConfig::standby_takeover is off.
  Manager* standby() { return standby_.get(); }
  const ManagerEpoch& manager_epoch() const { return epoch_; }
  sim::Engine& engine() { return engine_; }
  ib::Fabric& fabric() { return *fabric_; }
  fault::Injector& faults() { return *faults_; }
  Stats& stats() { return stats_; }
  const ModelConfig& config() const { return cfg_; }
  u32 client_count() const { return static_cast<u32>(clients_.size()); }
  u32 iod_count() const { return static_cast<u32>(iods_.size()); }

  // Drop every iod's page cache (benchmark "without cache" setup).
  void drop_all_caches() {
    for (auto& iod : iods_) iod->drop_caches();
  }

  // Cluster-wide default transfer policy. Applied by every client to
  // operations whose IoOptions did not pick a policy explicitly (via
  // with_policy()/with_scheme()); pass nullopt to clear.
  void set_default_policy(std::optional<core::TransferPolicy> p) {
    for (auto& c : clients_) c->set_default_policy(p);
  }

  // Run the engine until every scheduled event has fired; returns the
  // latest event time (the makespan of whatever was launched).
  TimePoint run() { return engine_.run(); }

  // Standby takeover at `at` (normally fired by the injector's takeover
  // hooks, `manager_takeover_delay` after a kManagerCrash window opens;
  // tests may call it directly). Bumps the cluster epoch, scans every iod's
  // stripe headers to rebuild the staleness map conservatively, sweeps the
  // new epoch to all iods (the zombie-primary fence), re-points resync at
  // the new manager and kicks a staleness sweep on every iod so rebuilt
  // resync targets actually heal. Idempotent: a second call while the
  // standby already holds the epoch is a no-op.
  void manager_takeover(TimePoint at);

 private:
  ModelConfig cfg_;
  Stats stats_;
  sim::Engine engine_;
  // Declared before the fabric/iods/clients that hold raw pointers to it.
  std::unique_ptr<fault::Injector> faults_;
  std::unique_ptr<ib::Fabric> fabric_;
  // The shared epoch cell outlives both managers (declared first).
  ManagerEpoch epoch_;
  std::unique_ptr<Manager> manager_;
  std::unique_ptr<Manager> standby_;  // null unless standby_takeover
  Manager* active_manager_ = nullptr;
  std::vector<std::unique_ptr<Iod>> iods_;
  std::vector<std::unique_ptr<Client>> clients_;
};

}  // namespace pvfsib::pvfs
