// Wires a whole simulated cluster together: event engine, fabric, metadata
// manager, N compute (client) nodes and M I/O nodes — the in-process
// equivalent of the paper's 8-node InfiniBand testbed.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/config.h"
#include "common/stats.h"
#include "fault/injector.h"
#include "ib/fabric.h"
#include "pvfs/client.h"
#include "pvfs/iod.h"
#include "pvfs/manager.h"
#include "sim/engine.h"

namespace pvfsib::pvfs {

class Cluster {
 public:
  Cluster(const ModelConfig& cfg, u32 client_count, u32 iod_count);

  Client& client(u32 i) { return *clients_.at(i); }
  Iod& iod(u32 i) { return *iods_.at(i); }
  Manager& manager() { return *manager_; }
  sim::Engine& engine() { return engine_; }
  ib::Fabric& fabric() { return *fabric_; }
  fault::Injector& faults() { return *faults_; }
  Stats& stats() { return stats_; }
  const ModelConfig& config() const { return cfg_; }
  u32 client_count() const { return static_cast<u32>(clients_.size()); }
  u32 iod_count() const { return static_cast<u32>(iods_.size()); }

  // Drop every iod's page cache (benchmark "without cache" setup).
  void drop_all_caches() {
    for (auto& iod : iods_) iod->drop_caches();
  }

  // Cluster-wide default transfer policy. Applied by every client to
  // operations whose IoOptions did not pick a policy explicitly (via
  // with_policy()/with_scheme()); pass nullopt to clear.
  void set_default_policy(std::optional<core::TransferPolicy> p) {
    for (auto& c : clients_) c->set_default_policy(p);
  }

  // Run the engine until every scheduled event has fired; returns the
  // latest event time (the makespan of whatever was launched).
  TimePoint run() { return engine_.run(); }

 private:
  ModelConfig cfg_;
  Stats stats_;
  sim::Engine engine_;
  // Declared before the fabric/iods/clients that hold raw pointers to it.
  std::unique_ptr<fault::Injector> faults_;
  std::unique_ptr<ib::Fabric> fabric_;
  std::unique_ptr<Manager> manager_;
  std::vector<std::unique_ptr<Iod>> iods_;
  std::vector<std::unique_ptr<Client>> clients_;
};

}  // namespace pvfsib::pvfs
