// Wires a whole simulated cluster together: event engine, fabric, the
// sharded metadata plane (N active managers, optional per-shard standbys),
// M compute (client) nodes and K I/O nodes — the in-process equivalent of
// the paper's 8-node InfiniBand testbed.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/config.h"
#include "common/stats.h"
#include "fault/injector.h"
#include "ib/fabric.h"
#include "pvfs/client.h"
#include "pvfs/iod.h"
#include "pvfs/manager.h"
#include "pvfs/meta_client.h"
#include "sim/engine.h"

namespace pvfsib::pvfs {

class Cluster {
 public:
  // Fluent topology builder:
  //   Cluster c(cfg, Cluster::Topology{}.clients(4).iods(8)
  //                                     .metadata_shards(4).standbys());
  // Unset knobs defer to the config (PvfsParams::metadata_shards,
  // FaultConfig::standby_takeover), so Topology{}.clients(n).iods(m) is
  // exactly the classic two-int constructor.
  struct Topology {
    u32 client_count = 1;
    u32 iod_count = 1;
    u32 shard_count = 0;  // 0: take ModelConfig's pvfs.metadata_shards
    std::optional<bool> with_standbys;  // unset: fault.standby_takeover

    Topology& clients(u32 n) {
      client_count = n;
      return *this;
    }
    Topology& iods(u32 n) {
      iod_count = n;
      return *this;
    }
    Topology& metadata_shards(u32 k) {
      shard_count = k;
      return *this;
    }
    Topology& standbys(bool v = true) {
      with_standbys = v;
      return *this;
    }
  };

  Cluster(const ModelConfig& cfg, const Topology& topo);
  // Classic shape: n clients, m iods, topology knobs from the config.
  Cluster(const ModelConfig& cfg, u32 client_count, u32 iod_count)
      : Cluster(cfg, Topology{}.clients(client_count).iods(iod_count)) {}

  Client& client(u32 i) { return *clients_.at(i); }
  Iod& iod(u32 i) { return *iods_.at(i); }
  // The primary manager of `shard` (historic accessor; most callers want
  // the shard's current authority, active_manager()).
  Manager& manager(u32 shard = 0) { return *managers_.at(shard); }
  // The manager currently holding `shard`'s epoch: the primary until a
  // standby takeover, the standby after.
  Manager& active_manager(u32 shard = 0) { return *active_.at(shard); }
  // The shard's standby manager, or null when the plane runs without one.
  Manager* standby(u32 shard = 0) { return standbys_.at(shard).get(); }
  const ManagerEpoch& manager_epoch(u32 shard = 0) const {
    return epochs_.at(shard);
  }
  // Authoritative shard map the clients' MetaClients seed from.
  const MetaRegistry& registry() const { return registry_; }
  u32 metadata_shards() const { return static_cast<u32>(managers_.size()); }
  sim::Engine& engine() { return engine_; }
  ib::Fabric& fabric() { return *fabric_; }
  fault::Injector& faults() { return *faults_; }
  Stats& stats() { return stats_; }
  const ModelConfig& config() const { return cfg_; }
  u32 client_count() const { return static_cast<u32>(clients_.size()); }
  u32 iod_count() const { return static_cast<u32>(iods_.size()); }

  // Drop every iod's page cache (benchmark "without cache" setup).
  void drop_all_caches() {
    for (auto& iod : iods_) iod->drop_caches();
  }

  // Cluster-wide default transfer policy. Applied by every client to
  // operations whose IoOptions did not pick a policy explicitly (via
  // with_policy()/with_scheme()); pass nullopt to clear.
  void set_default_policy(std::optional<core::TransferPolicy> p) {
    for (auto& c : clients_) c->set_default_policy(p);
  }

  // Run the engine until every scheduled event has fired; returns the
  // latest event time (the makespan of whatever was launched).
  TimePoint run() { return engine_.run(); }

  // --- Rolling interval counters (measurement plane) ----------------------
  // Start (or restart) rolling interval sampling of the cluster-wide Stats:
  // a window closes every `window` of virtual time from now until `until`
  // (the final window may be partial), so per-window throughput and
  // server-side rates are visible mid-run instead of only as one end-of-run
  // aggregate. Purely observational — runs that never call this schedule
  // nothing and stay byte-identical.
  IntervalSeries& sample_intervals(Duration window, TimePoint until);
  const IntervalSeries* intervals() const { return intervals_.get(); }

  // Standby takeover of one metadata shard at `at` (normally fired by the
  // injector's takeover hooks, `manager_takeover_delay` after the shard's
  // kManagerCrash window opens; tests may call it directly). Bumps the
  // shard's epoch, scans every iod's stripe headers *belonging to the
  // shard* to rebuild the staleness map conservatively, sweeps the new
  // epoch to the shard's cell on all iods (the zombie-primary fence),
  // promotes the standby in the registry (stale client maps converge via
  // their own rotation), re-points the shard's resync authority and kicks
  // a staleness sweep on every iod so rebuilt resync targets actually
  // heal. Idempotent: a second call while the standby already holds the
  // epoch is a no-op.
  void manager_takeover(u32 shard, TimePoint at);
  void manager_takeover(TimePoint at) { manager_takeover(0, at); }

  // Start the background scrubber on every iod: a rate-limited periodic
  // sweep (ReplicationParams::scrub_interval / scrub_chunk_bytes) that
  // reads local stripe data back, verifies block checksums, cross-checks
  // headers against the shard authority's staleness map, and kicks resync
  // for anything found rotten. Ticks stop after `until` so engine.run()
  // still terminates. No-op unless replication.factor > 1, resync and
  // scrub are all enabled — a run that never opts in schedules nothing and
  // stays byte-identical.
  void start_scrub(TimePoint until);

 private:
  ModelConfig cfg_;
  Stats stats_;
  sim::Engine engine_;
  // Declared before the fabric/iods/clients that hold raw pointers to it.
  std::unique_ptr<fault::Injector> faults_;
  std::unique_ptr<ib::Fabric> fabric_;
  // Per-shard epoch cells; sized once in the constructor (managers hold
  // pointers into it), before any manager attaches.
  std::vector<ManagerEpoch> epochs_;
  std::vector<std::unique_ptr<Manager>> managers_;   // per-shard primary
  std::vector<std::unique_ptr<Manager>> standbys_;   // per-shard, may be null
  std::vector<Manager*> active_;                     // per-shard authority
  // Declared before clients_ (each Client's MetaClient seeds from it and
  // keeps the pointer for redirect-driven refreshes).
  MetaRegistry registry_;
  std::vector<std::unique_ptr<Iod>> iods_;
  std::vector<std::unique_ptr<Client>> clients_;
  // Rolling interval sampler (sample_intervals); null until requested.
  std::unique_ptr<IntervalSeries> intervals_;
};

}  // namespace pvfsib::pvfs
