#include "pvfs/cluster.h"

namespace pvfsib::pvfs {

Cluster::Cluster(const ModelConfig& cfg, u32 client_count, u32 iod_count)
    : cfg_(cfg) {
  faults_ = std::make_unique<fault::Injector>(cfg.fault, &stats_);
  fabric_ = std::make_unique<ib::Fabric>(cfg.net, &stats_, faults_.get());
  manager_ = std::make_unique<Manager>(cfg, *fabric_, &stats_, iod_count,
                                       faults_.get());
  iods_.reserve(iod_count);
  for (u32 i = 0; i < iod_count; ++i) {
    iods_.push_back(std::make_unique<Iod>(i, client_count, cfg, *fabric_,
                                          &stats_, faults_.get()));
  }
  std::vector<Iod*> iod_ptrs;
  for (auto& iod : iods_) iod_ptrs.push_back(iod.get());
  clients_.reserve(client_count);
  for (u32 c = 0; c < client_count; ++c) {
    clients_.push_back(std::make_unique<Client>(c, cfg, engine_, *fabric_,
                                                *manager_, iod_ptrs, &stats_,
                                                faults_.get()));
  }
  if (cfg.replication.factor > 1 && cfg.replication.resync) {
    // Background re-replication: every iod can scan the manager's
    // staleness map against its peers, and each scheduled crash window's
    // end triggers a scan on the restarted iod. Off (the default) the
    // engine sees no extra events and runs stay byte-identical.
    for (auto& iod : iods_) {
      iod->configure_resync(&engine_, manager_.get(), iod_ptrs);
    }
    faults_->install_restart_hooks(engine_, [this](u32 iod, TimePoint at) {
      if (iod < iods_.size()) iods_[iod]->on_restart(at);
    });
  }
}

}  // namespace pvfsib::pvfs
