#include "pvfs/cluster.h"

#include "sim/trace.h"

namespace pvfsib::pvfs {

Cluster::Cluster(const ModelConfig& cfg, u32 client_count, u32 iod_count)
    : cfg_(cfg) {
  faults_ = std::make_unique<fault::Injector>(cfg.fault, &stats_);
  fabric_ = std::make_unique<ib::Fabric>(cfg.net, &stats_, faults_.get());
  manager_ = std::make_unique<Manager>(cfg, *fabric_, &stats_, iod_count,
                                       faults_.get());
  active_manager_ = manager_.get();
  if (cfg.fault.standby_takeover) {
    standby_ = std::make_unique<Manager>(cfg, *fabric_, &stats_, iod_count,
                                         faults_.get(), "mgr2");
    manager_->attach_epoch(&epoch_, /*active=*/true);
    standby_->attach_epoch(&epoch_, /*active=*/false);
  }
  iods_.reserve(iod_count);
  for (u32 i = 0; i < iod_count; ++i) {
    iods_.push_back(std::make_unique<Iod>(i, client_count, cfg, *fabric_,
                                          &stats_, faults_.get()));
  }
  std::vector<Iod*> iod_ptrs;
  for (auto& iod : iods_) iod_ptrs.push_back(iod.get());
  clients_.reserve(client_count);
  for (u32 c = 0; c < client_count; ++c) {
    clients_.push_back(std::make_unique<Client>(c, cfg, engine_, *fabric_,
                                                *manager_, iod_ptrs, &stats_,
                                                faults_.get()));
    if (standby_ != nullptr) {
      clients_.back()->add_standby_manager(standby_.get());
    }
  }
  if (cfg.replication.factor > 1 && cfg.replication.resync) {
    // Background re-replication: every iod can scan the manager's
    // staleness map against its peers, and each scheduled crash window's
    // end triggers a scan on the restarted iod. Off (the default) the
    // engine sees no extra events and runs stay byte-identical.
    for (auto& iod : iods_) {
      iod->configure_resync(&engine_, manager_.get(), iod_ptrs);
    }
    faults_->install_restart_hooks(engine_, [this](u32 iod, TimePoint at) {
      if (iod < iods_.size()) iods_[iod]->on_restart(at);
    });
  }
  if (standby_ != nullptr && faults_->enabled()) {
    // Fenced takeover rides the fault schedule: `manager_takeover_delay`
    // after each kManagerCrash window opens the standby promotes itself.
    faults_->install_manager_takeover_hooks(
        engine_, cfg.fault.manager_takeover_delay,
        [this](TimePoint at) { manager_takeover(at); });
  }
}

void Cluster::manager_takeover(TimePoint at) {
  if (standby_ == nullptr || standby_->active()) return;
  // Scan every iod's stripe headers (durable, like the data): the raw
  // material for the conservative staleness-map rebuild. The scan also
  // yields the highest version observed anywhere, the new mint floor.
  std::vector<Manager::HeaderObservation> headers;
  for (auto& iod : iods_) {
    for (const auto& [local_handle, version] : iod->stripe_headers()) {
      headers.push_back({iod->id(), local_handle, version});
    }
  }
  standby_->take_over(*manager_, headers, at);
  // Sweep the new epoch to every iod: from here on, version mints stamped
  // by the demoted primary are fenced out of stripe headers.
  for (auto& iod : iods_) iod->note_manager_epoch(epoch_.value);
  active_manager_ = standby_.get();
  stats_.add(stat::kPvfsManagerTakeovers);
  sim::Trace::instance().emitf(
      at, "cluster", "manager takeover -> mgr2 (epoch %llu)",
      static_cast<unsigned long long>(epoch_.value));
  if (cfg_.replication.factor > 1 && cfg_.replication.resync) {
    // Re-point the resync scanner at the new authority and kick a
    // staleness sweep on every iod: the rebuild marks anything not provably
    // current as a resync target, and those targets should heal without
    // waiting for the next crash-restart hook.
    std::vector<Iod*> iod_ptrs;
    for (auto& iod : iods_) iod_ptrs.push_back(iod.get());
    for (auto& iod : iods_) {
      iod->configure_resync(&engine_, standby_.get(), iod_ptrs);
      iod->on_restart(at);
    }
  }
}

}  // namespace pvfsib::pvfs
