#include "pvfs/cluster.h"

#include <string>

#include "sim/trace.h"

namespace pvfsib::pvfs {

namespace {
// "mgr"/"mgr2" for the classic unsharded plane (byte-compatible trace
// labels); "mgr<s>"/"mgr<s>b" per shard once the plane is sharded.
std::string primary_name(u32 shard, u32 shard_count) {
  if (shard_count <= 1) return "mgr";
  return "mgr" + std::to_string(shard);
}
std::string standby_name(u32 shard, u32 shard_count) {
  if (shard_count <= 1) return "mgr2";
  return "mgr" + std::to_string(shard) + "b";
}
}  // namespace

Cluster::Cluster(const ModelConfig& cfg, const Topology& topo) : cfg_(cfg) {
  const u32 shard_count =
      std::max<u32>(1, topo.shard_count != 0 ? topo.shard_count
                                             : cfg.pvfs.metadata_shards);
  // Keep the config coherent with the built topology: iods consult
  // pvfs.metadata_shards to route epoch fences and resync notes by handle.
  cfg_.pvfs.metadata_shards = shard_count;
  const bool with_standbys =
      topo.with_standbys.value_or(cfg.fault.standby_takeover);
  faults_ = std::make_unique<fault::Injector>(cfg.fault, &stats_);
  fabric_ = std::make_unique<ib::Fabric>(cfg_.net, &stats_, faults_.get());
  // Sized once up front: managers hold pointers into the vector.
  epochs_.resize(shard_count);
  managers_.reserve(shard_count);
  standbys_.resize(shard_count);
  active_.reserve(shard_count);
  for (u32 s = 0; s < shard_count; ++s) {
    managers_.push_back(std::make_unique<Manager>(
        cfg_, *fabric_, &stats_,
        ManagerOptions{.cluster_iod_count = topo.iod_count,
                       .faults = faults_.get(),
                       .name = primary_name(s, shard_count),
                       .shard_id = s,
                       .shard_count = shard_count}));
    active_.push_back(managers_.back().get());
    if (with_standbys) {
      standbys_[s] = std::make_unique<Manager>(
          cfg_, *fabric_, &stats_,
          ManagerOptions{.cluster_iod_count = topo.iod_count,
                         .faults = faults_.get(),
                         .name = standby_name(s, shard_count),
                         .shard_id = s,
                         .shard_count = shard_count});
      managers_[s]->attach_epoch(&epochs_[s], /*active=*/true);
      standbys_[s]->attach_epoch(&epochs_[s], /*active=*/false);
    }
  }
  for (u32 s = 0; s < shard_count; ++s) {
    std::vector<Manager*> candidates{managers_[s].get()};
    if (standbys_[s] != nullptr) candidates.push_back(standbys_[s].get());
    registry_.add_shard(std::move(candidates));
  }
  iods_.reserve(topo.iod_count);
  for (u32 i = 0; i < topo.iod_count; ++i) {
    iods_.push_back(std::make_unique<Iod>(i, topo.client_count, cfg_,
                                          *fabric_, &stats_, faults_.get()));
  }
  std::vector<Iod*> iod_ptrs;
  for (auto& iod : iods_) iod_ptrs.push_back(iod.get());
  clients_.reserve(topo.client_count);
  for (u32 c = 0; c < topo.client_count; ++c) {
    clients_.push_back(std::make_unique<Client>(c, cfg_, engine_, *fabric_,
                                                registry_, iod_ptrs, &stats_,
                                                faults_.get()));
  }
  if (cfg_.replication.factor > 1 && cfg_.replication.resync) {
    // Background re-replication: every iod can scan each shard authority's
    // staleness map against its peers, and each scheduled crash window's
    // end triggers a scan on the restarted iod. Off (the default) the
    // engine sees no extra events and runs stay byte-identical.
    for (auto& iod : iods_) {
      iod->configure_resync(&engine_, active_, iod_ptrs);
    }
    faults_->install_restart_hooks(engine_, [this](u32 iod, TimePoint at) {
      if (iod < iods_.size()) iods_[iod]->on_restart(at);
    });
  }
  if (faults_->enabled()) {
    // Scheduled kBitFlip events corrupt data at rest on the target iod
    // (rate-driven flips ride the write path inside the iod instead).
    faults_->install_corruption_hooks(engine_, [this](u32 iod, TimePoint at) {
      if (iod < iods_.size()) iods_[iod]->inject_bit_flip(at);
    });
  }
  if (with_standbys && faults_->enabled()) {
    // Fenced takeover rides the fault schedule: `manager_takeover_delay`
    // after each shard's kManagerCrash window opens, the shard's standby
    // promotes itself.
    faults_->install_manager_takeover_hooks(
        engine_, cfg_.fault.manager_takeover_delay,
        [this](u32 shard, TimePoint at) { manager_takeover(shard, at); });
  }
}

void Cluster::manager_takeover(u32 shard, TimePoint at) {
  if (shard >= managers_.size()) return;
  Manager* standby = standbys_[shard].get();
  if (standby == nullptr || standby->active()) return;
  // Scan every iod's stripe headers (durable, like the data) belonging to
  // this shard: the raw material for the conservative staleness-map
  // rebuild. The scan also yields the highest version observed anywhere in
  // the shard, the new mint floor. Other shards' headers are not this
  // authority's to judge.
  const u32 shard_count = static_cast<u32>(managers_.size());
  std::vector<Manager::HeaderObservation> headers;
  for (auto& iod : iods_) {
    for (const auto& [local_handle, version] : iod->stripe_headers()) {
      if (shard_of_handle(local_handle, shard_count) != shard) continue;
      headers.push_back({iod->id(), local_handle, version});
    }
  }
  standby->take_over(*managers_[shard], headers, at);
  // Sweep the new epoch to the shard's cell on every iod: from here on,
  // version mints stamped by the demoted primary are fenced out of the
  // shard's stripe headers.
  for (auto& iod : iods_) iod->note_manager_epoch(epochs_[shard].value, shard);
  active_[shard] = standby;
  registry_.set_active(shard, 1);
  stats_.add(stat::kPvfsManagerTakeovers);
  sim::Trace::instance().emitf(
      at, "cluster", "manager takeover shard %u -> %s (epoch %llu)", shard,
      standby->hca().name().c_str(),
      static_cast<unsigned long long>(epochs_[shard].value));
  if (cfg_.replication.factor > 1 && cfg_.replication.resync) {
    // Re-point the shard's resync authority at the new manager and kick a
    // staleness sweep on every iod: the rebuild marks anything not provably
    // current as a resync target, and those targets should heal without
    // waiting for the next crash-restart hook.
    for (auto& iod : iods_) {
      iod->set_resync_authority(shard, standby);
      iod->on_restart(at);
    }
  }
}

void Cluster::start_scrub(TimePoint until) {
  if (cfg_.replication.factor <= 1 || !cfg_.replication.resync ||
      !cfg_.replication.scrub) {
    return;
  }
  for (auto& iod : iods_) iod->start_scrub(until);
}

IntervalSeries& Cluster::sample_intervals(Duration window, TimePoint until) {
  intervals_ = std::make_unique<IntervalSeries>(&stats_, engine_.now());
  if (window <= Duration::zero() || until <= engine_.now()) {
    return *intervals_;
  }
  // Self-rescheduling close chain: each tick closes the current window and
  // arms the next, the final (possibly partial) one landing exactly at
  // `until`. The scheduled events hold the closure alive; the closure only
  // keeps a weak self-reference, so the chain frees itself after the last
  // tick instead of leaking a shared_ptr cycle.
  auto tick = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak = tick;
  *tick = [this, window, until, weak] {
    const TimePoint now = engine_.now();
    intervals_->close_window(now);
    if (now >= until) return;
    const TimePoint next = now + window < until ? now + window : until;
    engine_.schedule_at(next, [t = weak.lock()] {
      if (t != nullptr) (*t)();
    });
  };
  const TimePoint first =
      engine_.now() + window < until ? engine_.now() + window : until;
  engine_.schedule_at(first, [tick] { (*tick)(); });
  return *intervals_;
}

}  // namespace pvfsib::pvfs
