#include "pvfs/cluster.h"

#include <string>

#include "sim/trace.h"

namespace pvfsib::pvfs {

namespace {
// "mgr"/"mgr2" for the classic unsharded plane (byte-compatible trace
// labels); "mgr<s>"/"mgr<s>b" per shard once the plane is sharded.
std::string primary_name(u32 shard, u32 shard_count) {
  if (shard_count <= 1) return "mgr";
  return "mgr" + std::to_string(shard);
}
std::string standby_name(u32 shard, u32 shard_count) {
  if (shard_count <= 1) return "mgr2";
  return "mgr" + std::to_string(shard) + "b";
}
}  // namespace

Cluster::Cluster(const ModelConfig& cfg, const Topology& topo) : cfg_(cfg) {
  const u32 shard_count =
      std::max<u32>(1, topo.shard_count != 0 ? topo.shard_count
                                             : cfg.pvfs.metadata_shards);
  // Keep the config coherent with the built topology: iods consult
  // pvfs.metadata_shards to route epoch fences and resync notes by handle.
  cfg_.pvfs.metadata_shards = shard_count;
  const bool with_standbys =
      topo.with_standbys.value_or(cfg.fault.standby_takeover);
  with_standbys_ = with_standbys;
  cluster_iod_count_ = topo.iod_count;
  faults_ = std::make_unique<fault::Injector>(cfg.fault, &stats_);
  fabric_ = std::make_unique<ib::Fabric>(cfg_.net, &stats_, faults_.get());
  // Sized up front; a split grows it (deque: no relocation — managers hold
  // pointers into the cells).
  epochs_.resize(shard_count);
  migrating_.assign(shard_count, 0);
  managers_.reserve(shard_count);
  standbys_.resize(shard_count);
  active_.reserve(shard_count);
  for (u32 s = 0; s < shard_count; ++s) {
    managers_.push_back(std::make_unique<Manager>(
        cfg_, *fabric_, &stats_,
        ManagerOptions{.cluster_iod_count = topo.iod_count,
                       .faults = faults_.get(),
                       .name = primary_name(s, shard_count),
                       .shard_id = s,
                       .shard_count = shard_count}));
    active_.push_back(managers_.back().get());
    if (with_standbys) {
      standbys_[s] = std::make_unique<Manager>(
          cfg_, *fabric_, &stats_,
          ManagerOptions{.cluster_iod_count = topo.iod_count,
                         .faults = faults_.get(),
                         .name = standby_name(s, shard_count),
                         .shard_id = s,
                         .shard_count = shard_count});
      managers_[s]->attach_epoch(&epochs_[s], /*active=*/true);
      standbys_[s]->attach_epoch(&epochs_[s], /*active=*/false);
    }
    managers_[s]->attach_lease_bus(&lease_bus_);
    if (standbys_[s] != nullptr) standbys_[s]->attach_lease_bus(&lease_bus_);
  }
  for (u32 s = 0; s < shard_count; ++s) {
    std::vector<Manager*> candidates{managers_[s].get()};
    if (standbys_[s] != nullptr) candidates.push_back(standbys_[s].get());
    registry_.add_shard(std::move(candidates));
  }
  iods_.reserve(topo.iod_count);
  for (u32 i = 0; i < topo.iod_count; ++i) {
    iods_.push_back(std::make_unique<Iod>(i, topo.client_count, cfg_,
                                          *fabric_, &stats_, faults_.get()));
  }
  std::vector<Iod*> iod_ptrs;
  for (auto& iod : iods_) iod_ptrs.push_back(iod.get());
  clients_.reserve(topo.client_count);
  for (u32 c = 0; c < topo.client_count; ++c) {
    clients_.push_back(std::make_unique<Client>(c, cfg_, engine_, *fabric_,
                                                registry_, iod_ptrs, &stats_,
                                                faults_.get()));
    clients_.back()->attach_lease_bus(&lease_bus_);
  }
  if (cfg_.replication.factor > 1 && cfg_.replication.resync) {
    // Background re-replication: every iod can scan each shard authority's
    // staleness map against its peers, and each scheduled crash window's
    // end triggers a scan on the restarted iod. Off (the default) the
    // engine sees no extra events and runs stay byte-identical.
    for (auto& iod : iods_) {
      iod->configure_resync(&engine_, active_, iod_ptrs);
    }
    faults_->install_restart_hooks(engine_, [this](u32 iod, TimePoint at) {
      if (iod < iods_.size()) iods_[iod]->on_restart(at);
    });
  }
  if (faults_->enabled()) {
    // Scheduled kBitFlip events corrupt data at rest on the target iod
    // (rate-driven flips ride the write path inside the iod instead).
    faults_->install_corruption_hooks(engine_, [this](u32 iod, TimePoint at) {
      if (iod < iods_.size()) iods_[iod]->inject_bit_flip(at);
    });
  }
  if (with_standbys && faults_->enabled()) {
    // Fenced takeover rides the fault schedule: `manager_takeover_delay`
    // after each shard's kManagerCrash window opens, the shard's standby
    // promotes itself.
    faults_->install_manager_takeover_hooks(
        engine_, cfg_.fault.manager_takeover_delay,
        [this](u32 shard, TimePoint at) { manager_takeover(shard, at); });
  }
}

void Cluster::manager_takeover(u32 shard, TimePoint at) {
  if (shard >= managers_.size()) return;
  Manager* standby = standbys_[shard].get();
  if (standby == nullptr || standby->active()) return;
  // Scan every iod's stripe headers (durable, like the data) belonging to
  // this shard: the raw material for the conservative staleness-map
  // rebuild. The scan also yields the highest version observed anywhere in
  // the shard, the new mint floor. Other shards' headers are not this
  // authority's to judge.
  const u32 shard_count = static_cast<u32>(managers_.size());
  std::vector<Manager::HeaderObservation> headers;
  for (auto& iod : iods_) {
    for (const auto& [local_handle, version] : iod->stripe_headers()) {
      if (shard_of_handle(local_handle, shard_count) != shard) continue;
      headers.push_back({iod->id(), local_handle, version});
    }
  }
  standby->take_over(*managers_[shard], headers, at);
  // Sweep the new epoch to the shard's cell on every iod: from here on,
  // version mints stamped by the demoted primary are fenced out of the
  // shard's stripe headers.
  for (auto& iod : iods_) iod->note_manager_epoch(epochs_[shard].value, shard);
  active_[shard] = standby;
  registry_.set_active(shard, 1);
  // Revoke the shard's cache leases: the fresh authority restarts its
  // write-notice sequences at zero, and entries cached under the old
  // manager's counts would eventually re-validate against the restarted
  // ones (the ABA the lease plane exists for).
  lease_bus_.publish(LeaseRevoke{LeaseRevokeReason::kEpochBump, shard,
                                 static_cast<u32>(managers_.size()), "", 0});
  stats_.add(stat::kPvfsManagerTakeovers);
  sim::Trace::instance().emitf(
      at, "cluster", "manager takeover shard %u -> %s (epoch %llu)", shard,
      standby->hca().name().c_str(),
      static_cast<unsigned long long>(epochs_[shard].value));
  if (cfg_.replication.factor > 1 && cfg_.replication.resync) {
    // Re-point the shard's resync authority at the new manager and kick a
    // staleness sweep on every iod: the rebuild marks anything not provably
    // current as a resync target, and those targets should heal without
    // waiting for the next crash-restart hook.
    for (auto& iod : iods_) {
      iod->set_resync_authority(shard, standby);
      iod->on_restart(at);
    }
  }
}

// --- Live shard migration / resharding -------------------------------------

// One in-flight stream: `shard` drains from `source` into `target`. For a
// single move new_shard == shard; for a split new_shard is the sibling
// (split_sibling(shard, K)) and `group` joins the K streams at the barrier.
struct Cluster::MigrationState {
  u32 shard = 0;
  u32 new_shard = 0;
  Manager* source = nullptr;
  std::unique_ptr<Manager> target;
  u64 start_epoch = 0;  // abort if the shard's epoch moves past this
  u64 bytes_total = 0;
  u64 bytes_done = 0;
  std::shared_ptr<SplitGroup> group;  // null for a single move
};

struct Cluster::SplitGroup {
  u32 old_count = 0;
  u32 pending = 0;  // streams still draining
  bool aborted = false;
  std::vector<std::shared_ptr<MigrationState>> children;
};

std::unique_ptr<Manager> Cluster::provision_manager(const std::string& name,
                                                    u32 shard,
                                                    u32 shard_count) {
  auto m = std::make_unique<Manager>(
      cfg_, *fabric_, &stats_,
      ManagerOptions{.cluster_iod_count = cluster_iod_count_,
                     .faults = faults_.get(),
                     .name = name,
                     .shard_id = shard,
                     .shard_count = shard_count});
  m->attach_lease_bus(&lease_bus_);
  return m;
}

bool Cluster::migration_inflight() const {
  if (split_inflight_) return true;
  for (char m : migrating_) {
    if (m != 0) return true;
  }
  return false;
}

bool Cluster::migrate_shard(u32 shard, TimePoint at) {
  if (shard >= managers_.size() || split_inflight_ || migrating_[shard] != 0) {
    return false;
  }
  if (at < engine_.now()) at = engine_.now();
  const u32 shard_count = static_cast<u32>(managers_.size());
  auto st = std::make_shared<MigrationState>();
  st->shard = shard;
  st->new_shard = shard;
  // Stream from the shard's current authority — after a takeover that is
  // the promoted standby, not the original primary.
  st->source = active_[shard];
  st->target = provision_manager("mgr" + std::to_string(shard) + "m", shard,
                                 shard_count);
  st->target->attach_epoch(&epochs_[shard], /*active=*/false);
  st->start_epoch = epochs_[shard].value;
  st->bytes_total =
      std::max<u64>(st->source->shard_state_bytes(shard, shard_count), 1);
  migrating_[shard] = 1;
  sim::Trace::instance().emitf(
      at, "cluster", "migration shard %u: %s -> %s streaming %llu bytes",
      shard, st->source->hca().name().c_str(),
      st->target->hca().name().c_str(),
      static_cast<unsigned long long>(st->bytes_total));
  engine_.schedule_at(at, [this, st] { migration_round(st); });
  return true;
}

bool Cluster::split_shards(TimePoint at) {
  if (migration_inflight()) return false;
  if (at < engine_.now()) at = engine_.now();
  const u32 k = static_cast<u32>(managers_.size());
  const u32 k2 = 2 * k;
  // Install the sibling epoch cells up front (deque: existing cells stay
  // put). Seeding each at the source's current epoch makes the cutover
  // bump strictly fence every pre-split mint for the moved handles.
  while (epochs_.size() < k2) epochs_.push_back(ManagerEpoch{});
  auto group = std::make_shared<SplitGroup>();
  group->old_count = k;
  group->pending = k;
  for (u32 s = 0; s < k; ++s) {
    const u32 sibling = split_sibling(s, k);
    epochs_[sibling].value =
        std::max(epochs_[sibling].value, epochs_[s].value);
    auto st = std::make_shared<MigrationState>();
    st->shard = s;
    st->new_shard = sibling;
    st->source = active_[s];
    st->target = provision_manager(primary_name(sibling, k2), sibling, k2);
    st->target->attach_epoch(&epochs_[sibling], /*active=*/false);
    st->start_epoch = epochs_[s].value;
    st->bytes_total =
        std::max<u64>(st->source->shard_state_bytes(sibling, k2), 1);
    st->group = group;
    group->children.push_back(st);
    migrating_[s] = 1;
  }
  split_inflight_ = true;
  sim::Trace::instance().emitf(at, "cluster",
                               "split start: %u -> %u shards", k, k2);
  for (auto& st : group->children) {
    engine_.schedule_at(at, [this, st] { migration_round(st); });
  }
  return true;
}

bool Cluster::migration_aborted(MigrationState& st, TimePoint at) {
  // Source crash window: stream rounds from a crashed source are lost and
  // the snapshot cannot be trusted.
  if (faults_->manager_down(at, st.shard)) return true;
  // A standby takeover raced the stream: the epoch moved on and the
  // source's snapshot is no longer the shard's authority.
  if (epochs_[st.shard].value != st.start_epoch) return true;
  // Scheduled target crash (one-shot; consumed here).
  if (faults_->migration_target_crashed(st.shard, at)) return true;
  return false;
}

void Cluster::migration_round(std::shared_ptr<MigrationState> st) {
  const TimePoint now = engine_.now();
  if (migration_aborted(*st, now)) {
    abort_migration(st, now);
    return;
  }
  const u64 chunk =
      std::min<u64>(cfg_.migration.round_bytes, st->bytes_total - st->bytes_done);
  // One rate-limited round: a control send source -> target carrying
  // `chunk` snapshot bytes. The state copy itself happens host-side at
  // cutover (delta-inclusive by construction — serve-path mutations run
  // synchronously before the later cutover event); the rounds model the
  // wire occupancy and pace the stream.
  fabric_->send_control(st->source->hca(), st->target->hca(), chunk, now,
                        ib::ControlKind::kRequest);
  stats_.add(stat::kPvfsMigrationRounds);
  st->bytes_done += chunk;
  if (st->bytes_done >= st->bytes_total) {
    migration_streamed(st);
    return;
  }
  engine_.schedule_at(now + transfer_time(chunk, cfg_.migration.stream_bandwidth),
                      [this, st] { migration_round(st); });
}

void Cluster::migration_streamed(std::shared_ptr<MigrationState> st) {
  const TimePoint now = engine_.now();
  const TimePoint cut = now + cfg_.migration.cutover_delay;
  if (st->group == nullptr) {
    engine_.schedule_at(cut, [this, st] { migrate_cutover(st); });
    return;
  }
  // Split barrier: the last stream to drain arms the group cutover (all K
  // pairs must flip at one instant — per-pair flips would split-brain
  // names between managers routing with different shard counts).
  auto group = st->group;
  if (--group->pending != 0) return;
  if (group->aborted) {
    wind_down_split(group, now);
    return;
  }
  engine_.schedule_at(cut, [this, group] { split_cutover(group); });
}

void Cluster::abort_migration(std::shared_ptr<MigrationState> st,
                              TimePoint at) {
  migrating_[st->shard] = 0;
  sim::Trace::instance().emitf(
      at, "cluster", "migration shard %u aborted (falling back to %s)",
      st->shard, st->source->hca().name().c_str());
  if (st->group != nullptr) {
    st->group->aborted = true;
    if (--st->group->pending == 0) wind_down_split(st->group, at);
    return;
  }
  // The target dies with the state; the source never stopped serving.
  stats_.add(stat::kPvfsMigrationAborts);
}

void Cluster::wind_down_split(std::shared_ptr<SplitGroup> group,
                              TimePoint at) {
  for (auto& child : group->children) migrating_[child->shard] = 0;
  split_inflight_ = false;
  // One abort per migration unit: the whole split counts once.
  stats_.add(stat::kPvfsMigrationAborts);
  sim::Trace::instance().emitf(at, "cluster",
                               "split aborted; plane stays at %u shards",
                               group->old_count);
  // Break the group <-> child shared_ptr cycle; the states (and any abandoned
  // target managers) die once the last in-flight event releases its ref.
  group->children.clear();
}

void Cluster::migrate_cutover(std::shared_ptr<MigrationState> st) {
  const TimePoint now = engine_.now();
  if (migration_aborted(*st, now)) {
    abort_migration(st, now);
    return;
  }
  const u32 shard = st->shard;
  const u32 shard_count = static_cast<u32>(managers_.size());
  // Fenced cutover, one engine instant: bump the epoch (every in-flight
  // mint the source stamped is now fenced at the iods, exactly like a
  // takeover), hand the final snapshot to the target, retire the source
  // into a pure redirector.
  ManagerEpoch& cell = epochs_[shard];
  ++cell.value;
  Manager* target = st->target.get();
  target->adopt_shard(st->source->export_shard(shard, shard_count), shard,
                      shard_count, &cell);
  st->source->retire_migrated();
  // The demoted boxes stay alive as redirectors — stale client maps hold
  // raw pointers into them.
  retired_.push_back(std::move(managers_[shard]));
  managers_[shard] = std::move(st->target);
  if (standbys_[shard] != nullptr && standbys_[shard].get() == st->source) {
    // The source was a promoted standby (a takeover preceded this
    // migration); it retires too and the shard continues standby-less.
    retired_.push_back(std::move(standbys_[shard]));
  }
  active_[shard] = target;
  std::vector<Manager*> candidates{target};
  if (standbys_[shard] != nullptr) candidates.push_back(standbys_[shard].get());
  registry_.set_candidates(shard, std::move(candidates), 0);
  migrating_[shard] = 0;
  repoint_shard(shard, target);
  // The target restarts the shard's write-notice sequences at zero: revoke
  // the shard's cache leases so nothing cached under the source's counts
  // survives to re-validate (same ABA as a takeover). Scoped to this shard;
  // the other shards' caches stay warm.
  lease_bus_.publish(
      LeaseRevoke{LeaseRevokeReason::kEpochBump, shard, shard_count, "", 0});
  kick_resync(now);
  stats_.add(stat::kPvfsShardMigrations);
  sim::Trace::instance().emitf(
      now, "cluster", "migration shard %u cutover -> %s (epoch %llu)", shard,
      target->hca().name().c_str(),
      static_cast<unsigned long long>(cell.value));
}

void Cluster::split_cutover(std::shared_ptr<SplitGroup> group) {
  const TimePoint now = engine_.now();
  for (auto& st : group->children) {
    if (migration_aborted(*st, now)) group->aborted = true;
  }
  if (group->aborted) {
    wind_down_split(group, now);
    return;
  }
  const u32 k = group->old_count;
  const u32 k2 = 2 * k;
  // Atomic flip, one engine instant: adopt every sibling half, shed the
  // moved halves from the sources, then rewire registry + iod routing.
  for (u32 s = 0; s < k; ++s) {
    auto& st = group->children[s];
    const u32 sibling = split_sibling(s, k);
    ManagerEpoch& cell = epochs_[sibling];
    cell.value = std::max(cell.value, epochs_[s].value) + 1;
    st->target->adopt_shard(st->source->export_shard(sibling, k2), sibling,
                            k2, &cell);
    st->source->drop_shard_complement(k2);
    // Shard s's epoch is NOT bumped: handles that stay put keep their
    // in-flight mints valid across the split.
    if (standbys_[s] != nullptr) standbys_[s]->retag_shard(k2);
  }
  for (u32 s = 0; s < k; ++s) {
    auto& st = group->children[s];
    const u32 sibling = split_sibling(s, k);
    Manager* target = st->target.get();
    managers_.push_back(std::move(st->target));
    active_.push_back(target);
    std::unique_ptr<Manager> sb;
    if (with_standbys_) {
      sb = provision_manager(standby_name(sibling, k2), sibling, k2);
      sb->attach_epoch(&epochs_[sibling], /*active=*/false);
    }
    standbys_.push_back(std::move(sb));
    std::vector<Manager*> candidates{target};
    if (standbys_.back() != nullptr) {
      candidates.push_back(standbys_.back().get());
    }
    registry_.add_shard(std::move(candidates));
  }
  registry_.note_resharded();
  cfg_.pvfs.metadata_shards = k2;
  for (auto& iod : iods_) iod->set_metadata_shards(k2);
  // Revoke cache leases for every *new* sibling shard, carrying the
  // post-split count so holders re-route their entries with it: an entry
  // that re-hashes onto a sibling is dropped (its handles now live under a
  // fresh authority with restarted write-notice sequences), one that stays
  // on its old shard survives — that shard's epoch and sequences did not
  // move.
  for (u32 s = 0; s < k; ++s) {
    lease_bus_.publish(LeaseRevoke{LeaseRevokeReason::kEpochBump,
                                   split_sibling(s, k), k2, "", 0});
  }
  migrating_.assign(k2, 0);
  split_inflight_ = false;
  for (u32 s = 0; s < k; ++s) {
    repoint_shard(split_sibling(s, k), active_[split_sibling(s, k)]);
  }
  kick_resync(now);
  stats_.add(stat::kPvfsShardSplits);
  sim::Trace::instance().emitf(now, "cluster",
                               "split cutover: plane now %u shards", k2);
  // Break the group <-> child shared_ptr cycle so the split state frees.
  group->children.clear();
}

void Cluster::repoint_shard(u32 shard, Manager* owner) {
  for (auto& iod : iods_) iod->note_manager_epoch(epochs_[shard].value, shard);
  if (cfg_.replication.factor > 1 && cfg_.replication.resync) {
    for (auto& iod : iods_) iod->set_resync_authority(shard, owner);
  }
}

void Cluster::kick_resync(TimePoint at) {
  if (cfg_.replication.factor <= 1 || !cfg_.replication.resync) return;
  for (auto& iod : iods_) iod->on_restart(at);
}

void Cluster::start_scrub(TimePoint until) {
  if (cfg_.replication.factor <= 1 || !cfg_.replication.resync ||
      !cfg_.replication.scrub) {
    return;
  }
  for (auto& iod : iods_) iod->start_scrub(until);
}

IntervalSeries& Cluster::sample_intervals(Duration window, TimePoint until) {
  intervals_ = std::make_unique<IntervalSeries>(&stats_, engine_.now());
  if (window <= Duration::zero() || until <= engine_.now()) {
    return *intervals_;
  }
  // Self-rescheduling close chain: each tick closes the current window and
  // arms the next, the final (possibly partial) one landing exactly at
  // `until`. The scheduled events hold the closure alive; the closure only
  // keeps a weak self-reference, so the chain frees itself after the last
  // tick instead of leaking a shared_ptr cycle.
  auto tick = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak = tick;
  *tick = [this, window, until, weak] {
    const TimePoint now = engine_.now();
    intervals_->close_window(now);
    if (now >= until) return;
    const TimePoint next = now + window < until ? now + window : until;
    engine_.schedule_at(next, [t = weak.lock()] {
      if (t != nullptr) (*t)();
    });
  };
  const TimePoint first =
      engine_.now() + window < until ? engine_.now() + window : until;
  engine_.schedule_at(first, [tick] { (*tick)(); });
  return *intervals_;
}

}  // namespace pvfsib::pvfs
