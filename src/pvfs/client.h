// The PVFS client library: pvfs_read_list / pvfs_write_list (and contiguous
// wrappers) against the simulated cluster.
//
// Each operation partitions its request across the striped I/O servers,
// splits every server's share into rounds (at most max_list_pairs file
// accesses and one staging buffer of data each), and drives a per-server
// state machine over the event engine:
//
//   write round:  request --> [ack] --> data push (policy scheme) -->
//                 server disk phase --> reply
//   read round:   request --> server disk (+ direct/fast return) -->
//                 [ready ack --> client pull] --> reply
//
// Rounds to the same server are flow-controlled (next request leaves when
// the previous reply arrives); different servers run concurrently, which is
// where PVFS's striping parallelism comes from.
#pragma once

#include <functional>
#include <memory>

#include "common/config.h"
#include "core/ogr.h"
#include "core/transfer.h"
#include "ib/fabric.h"
#include "ib/mr_cache.h"
#include "pvfs/iod.h"
#include "pvfs/manager.h"
#include "pvfs/protocol.h"
#include "sim/engine.h"
#include "vmem/address_space.h"

namespace pvfsib::pvfs {

struct OpenFile {
  FileMeta meta;
};

struct IoOptions {
  bool sync = false;     // writes: fsync on the iod before the reply
  bool use_ads = true;   // allow server-side Active Data Sieving
  core::TransferPolicy policy;  // noncontiguous transfer scheme
  // Reads: allow the server to gather-push straight into a single
  // contiguous destination buffer.
  bool direct_read_return = true;
  // Application-aware registration (Section 4.2.1): the actual allocation
  // the list buffers came from (e.g. the whole malloc'd array). When set
  // (length > 0), the client pins that one region instead of running OGR.
  u64 allocation_hint_addr = 0;
  u64 allocation_hint_len = 0;
};

struct IoResult {
  Status status;
  u64 bytes = 0;
  TimePoint start = TimePoint::origin();
  TimePoint end = TimePoint::origin();

  Duration elapsed() const { return end - start; }
  double bandwidth_mib() const {
    return pvfsib::bandwidth_mib(bytes, elapsed());
  }
  bool ok() const { return status.is_ok(); }
};

class Client {
 public:
  Client(u32 id, const ModelConfig& cfg, sim::Engine& engine,
         ib::Fabric& fabric, Manager& manager, std::vector<Iod*> iods,
         Stats* stats);

  // --- Metadata --------------------------------------------------------
  Result<OpenFile> create(const std::string& name);
  Result<OpenFile> create(const std::string& name, u64 stripe_size,
                          u32 iod_count,
                          u32 base_iod = Manager::kAutoBase);
  Result<OpenFile> open(const std::string& name);
  Result<FileMeta> stat(const std::string& name);
  // Remove the namespace entry and every iod's local stripe file.
  Status remove(const std::string& name);

  // --- List I/O (async) -----------------------------------------------
  using Callback = std::function<void(IoResult)>;
  void write_list_async(const OpenFile& file, const core::ListIoRequest& req,
                        const IoOptions& opts, TimePoint start, Callback done);
  void read_list_async(const OpenFile& file, const core::ListIoRequest& req,
                       const IoOptions& opts, TimePoint start, Callback done);

  // --- List I/O (blocking: runs the engine until this op completes) -----
  IoResult write_list(const OpenFile& file, const core::ListIoRequest& req,
                      const IoOptions& opts = {});
  IoResult read_list(const OpenFile& file, const core::ListIoRequest& req,
                     const IoOptions& opts = {});

  // --- Contiguous convenience wrappers ----------------------------------
  IoResult write(const OpenFile& file, u64 file_offset, u64 addr, u64 length,
                 const IoOptions& opts = {});
  IoResult read(const OpenFile& file, u64 file_offset, u64 addr, u64 length,
                const IoOptions& opts = {});

  // The client's process state.
  vmem::AddressSpace& memory() { return as_; }
  ib::Hca& hca() { return hca_; }
  ib::MrCache& mr_cache() { return cache_; }
  core::GroupRegistrar& registrar() { return registrar_; }
  u32 id() const { return id_; }

  // Local logical clock: blocking calls start at now() and advance it.
  TimePoint now() const { return now_; }
  void advance_to(TimePoint t) { now_ = max(now_, t); }

 private:
  struct Round {
    ExtentList accesses;           // iod-local file extents
    core::MemSegmentList mem;      // matching client memory slices
    u64 bytes = 0;
  };
  struct OpState;  // shared per-operation bookkeeping

  void start_op(const OpenFile& file, const core::ListIoRequest& req,
                const IoOptions& opts, TimePoint start, bool is_write,
                Callback done);
  void run_write_round(std::shared_ptr<OpState> op, u32 iod_idx,
                       size_t round_idx, TimePoint t0);
  void run_read_round(std::shared_ptr<OpState> op, u32 iod_idx,
                      size_t round_idx, TimePoint t0);
  void finish_round(std::shared_ptr<OpState> op, u32 iod_idx,
                    size_t round_idx, TimePoint t, Status status,
                    bool is_write);
  static std::vector<Round> split_rounds(const core::ServerSubRequest& sub,
                                         u64 max_pairs, u64 max_bytes);

  IoResult run_blocking(const OpenFile& file, const core::ListIoRequest& req,
                        const IoOptions& opts, bool is_write);

  u32 id_;
  ModelConfig cfg_;
  sim::Engine& engine_;
  ib::Fabric& fabric_;
  Manager& manager_;
  std::vector<Iod*> iods_;
  Stats* stats_;

  vmem::AddressSpace as_;
  ib::Hca hca_;
  ib::MrCache cache_;
  core::GroupRegistrar registrar_;
  core::NoncontigTransfer xfer_;
  core::TransferEndpoint ep_;  // bounce buffer endpoint
  TimePoint now_ = TimePoint::origin();
};

}  // namespace pvfsib::pvfs
