// The PVFS client library against the simulated cluster.
//
// The public surface is a handle-based async operation API: describe an
// operation with an IoDesc (direction + list request + options), submit()
// it, and use the returned IoHandle to wait(), poll(), or attach
// completion callbacks. The blocking read_list/write_list calls and the
// contiguous read/write wrappers are thin shims over submit().
//
// Each operation partitions its request across the striped I/O servers,
// splits every server's share into rounds (at most max_list_pairs file
// accesses and one staging buffer of data each), and drives a per-server
// state machine over the event engine:
//
//   write round:  request --> [ack] --> data push (policy scheme) -->
//                 server disk phase --> reply
//   read round:   request --> server disk (+ direct/fast return) -->
//                 [ready ack --> client pull] --> reply
//
// Rounds to the same server are flow-controlled by an outstanding-round
// window (ModelConfig::pipeline_depth). At the default depth 1 the next
// request leaves when the previous reply arrives (classic PVFS). At depth
// W > 1 the client issues round k+1 as soon as round k's data phase clears
// the wire, keeping up to W rounds in flight per iod; the iod lands each
// in-flight round in its own staging buffer and the per-iod disk queue
// serializes the disk phases in data-arrival order, which preserves write
// ordering per handle. Different servers always run concurrently — that is
// where PVFS's striping parallelism comes from; the window adds wire/disk
// overlap on top of it.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>

#include "cache/client_cache.h"
#include "common/config.h"
#include "core/ogr.h"
#include "core/transfer.h"
#include "ib/fabric.h"
#include "ib/mr_cache.h"
#include "pvfs/iod.h"
#include "pvfs/manager.h"
#include "pvfs/meta_client.h"
#include "pvfs/protocol.h"
#include "sim/engine.h"
#include "vmem/address_space.h"

namespace pvfsib::fault {
class Injector;
}

namespace pvfsib::pvfs {

struct OpenFile {
  FileMeta meta;
};

struct IoOptions {
  bool sync = false;     // writes: fsync on the iod before the reply
  bool use_ads = true;   // allow server-side Active Data Sieving
  core::TransferPolicy policy;  // noncontiguous transfer scheme
  // True when the caller chose `policy` deliberately (set by with_policy).
  // An unmarked policy defers to the cluster-level default, if one is set.
  bool policy_explicit = false;
  // Reads: allow the server to gather-push straight into a single
  // contiguous destination buffer.
  bool direct_read_return = true;
  // Application-aware registration (Section 4.2.1): the actual allocation
  // the list buffers came from (e.g. the whole malloc'd array). When set
  // (length > 0), the client pins that one region instead of running OGR.
  u64 allocation_hint_addr = 0;
  u64 allocation_hint_len = 0;

  // Fluent setup, e.g. IoOptions{}.with_sync().with_policy(p).
  IoOptions& with_sync(bool v = true) {
    sync = v;
    return *this;
  }
  IoOptions& with_ads(bool v = true) {
    use_ads = v;
    return *this;
  }
  IoOptions& with_policy(const core::TransferPolicy& p) {
    policy = p;
    policy_explicit = true;
    return *this;
  }
  IoOptions& with_scheme(core::XferScheme s) {
    policy.scheme = s;
    policy_explicit = true;
    return *this;
  }
  IoOptions& with_direct_read_return(bool v = true) {
    direct_read_return = v;
    return *this;
  }
  IoOptions& with_allocation_hint(u64 addr, u64 len) {
    allocation_hint_addr = addr;
    allocation_hint_len = len;
    return *this;
  }
};

// Where an operation's virtual time went, accumulated across every round
// of every server chain (phases of different servers overlap in wall-clock
// time, so the buckets sum to more than elapsed() on striped operations).
struct IoPhases {
  Duration registration = Duration::zero();  // OGR / pin-down work
  Duration wire = Duration::zero();   // data phases: pack copies + RDMA
  Duration disk = Duration::zero();   // server disk service time
  Duration stall = Duration::zero();  // rounds blocked on the window
};

struct IoResult {
  Status status;
  u64 bytes = 0;
  TimePoint start = TimePoint::origin();
  TimePoint end = TimePoint::origin();
  IoPhases phases;
  // Round retries the recovery layer spent on this operation (0 on a clean
  // run; only ever nonzero when a fault plane is active).
  u32 retries = 0;
  // Read-failover hops taken across the operation's rounds (replicated
  // reads only). Together with `retries` this tells a caller *how* a read
  // survived — or, with status kAllReplicasFailed, how hard it tried.
  u32 failovers = 0;

  Duration elapsed() const { return end - start; }
  double bandwidth_mib() const {
    return pvfsib::bandwidth_mib(bytes, elapsed());
  }
  bool ok() const { return status.is_ok(); }
  // Completed correctly, but only after surviving injected faults.
  bool recovered() const { return ok() && retries > 0; }
};

using IoCallback = std::function<void(IoResult)>;

enum class IoDir { kWrite, kRead };

// Everything that defines one list I/O operation. Aggregate-initializable:
//   client.submit({IoDir::kWrite, file, req, opts});
struct IoDesc {
  IoDir dir = IoDir::kWrite;
  OpenFile file;
  core::ListIoRequest req;
  IoOptions opts;
  // Earliest virtual time the operation may start; clamped to the engine
  // clock at submit. Blocking shims pass the client's logical clock.
  TimePoint start = TimePoint::origin();
};

class Client;

// A first-class reference to an in-flight (or completed) operation.
// Cheap to copy; all copies observe the same completion state. Completion
// callbacks registered after the operation finished fire immediately.
class IoHandle {
 public:
  IoHandle() = default;

  bool valid() const { return state_ != nullptr; }
  // Non-blocking: has the operation completed (successfully or not)?
  bool poll() const;
  // The outcome; only meaningful once poll() is true (asserts otherwise).
  const IoResult& result() const;
  // Drive the engine until this operation completes, then return its
  // result and advance the owning client's logical clock past it.
  IoResult wait();
  // Register a completion callback (fires immediately if already done).
  // Returns *this so a callback can be chained onto a fresh submit().
  IoHandle& on_complete(IoCallback cb);

 private:
  friend class Client;
  struct State;
  IoHandle(Client* client, std::shared_ptr<State> state)
      : client_(client), state_(std::move(state)) {}

  Client* client_ = nullptr;
  std::shared_ptr<State> state_;
};

class Client {
 public:
  Client(u32 id, const ModelConfig& cfg, sim::Engine& engine,
         ib::Fabric& fabric, const MetaRegistry& registry,
         std::vector<Iod*> iods, Stats* stats,
         fault::Injector* faults = nullptr);

  // --- Metadata --------------------------------------------------------
  // Thin blocking shims over MetaClient::call: each builds one typed
  // MetaRequest, routes it through the shard map, and advances the
  // client's logical clock past the reply (docs/ASYNC_API.md has the full
  // request/reply mapping).
  Result<OpenFile> create(const std::string& name);
  Result<OpenFile> create(const std::string& name, u64 stripe_size,
                          u32 iod_count,
                          u32 base_iod = Manager::kAutoBase);
  Result<OpenFile> open(const std::string& name);
  Result<FileMeta> stat(const std::string& name);
  // Remove the namespace entry and every iod's local stripe file.
  Status remove(const std::string& name);

  // --- List I/O ---------------------------------------------------------
  // The one entry point: submit an operation, get a handle.
  IoHandle submit(const IoDesc& desc);

  // Blocking shims over submit(): run the engine until the op completes.
  IoResult write_list(const OpenFile& file, const core::ListIoRequest& req,
                      const IoOptions& opts = {});
  IoResult read_list(const OpenFile& file, const core::ListIoRequest& req,
                     const IoOptions& opts = {});

  // --- Contiguous convenience wrappers ----------------------------------
  IoResult write(const OpenFile& file, u64 file_offset, u64 addr, u64 length,
                 const IoOptions& opts = {});
  IoResult read(const OpenFile& file, u64 file_offset, u64 addr, u64 length,
                const IoOptions& opts = {});

  // Default transfer policy applied to operations whose options did not
  // set one explicitly (see Cluster::set_default_policy).
  void set_default_policy(std::optional<core::TransferPolicy> p) {
    default_policy_ = std::move(p);
  }
  const std::optional<core::TransferPolicy>& default_policy() const {
    return default_policy_;
  }

  // The metadata routing facade (shard map cache, redirects, version-plane
  // authority selection). Exposed for tests and tooling that poke at the
  // cached map (e.g. MetaClient::invalidate_map).
  MetaClient& meta() { return meta_; }

  // --- Client caching tier (src/cache/) ---------------------------------
  // Subscribe this client's cache to the cluster's lease revocation bus,
  // routed through the MetaClient. No-op when CacheParams::enabled is off
  // (the ctor never set a sink, so nothing subscribes).
  void attach_lease_bus(LeaseBus* bus) { meta_.attach_lease_bus(bus); }
  // Write-back mode: push every dirty extent of `file` to the servers and
  // convert it to clean. Blocking (drives the engine); a no-op returning
  // ok/0 bytes when there is nothing dirty or write-back is off.
  IoResult flush(const OpenFile& file);
  // POSIX-close semantics for the write-back mode: flush, then drop the
  // file's cached data (the next open re-reads through the tiers).
  IoResult close(const OpenFile& file);
  // The attribute/data cache itself, for tests and cache-drop tooling.
  cache::ClientCache& data_cache() { return ccache_; }

  // The client's process state.
  vmem::AddressSpace& memory() { return as_; }
  ib::Hca& hca() { return hca_; }
  ib::MrCache& cache() { return cache_; }
  ib::MrCache& mr_cache() { return cache_; }
  core::GroupRegistrar& registrar() { return registrar_; }
  u32 id() const { return id_; }

  // Local logical clock: blocking calls start at now() and advance it.
  TimePoint now() const { return now_; }
  void advance_to(TimePoint t) { now_ = max(now_, t); }

 private:
  friend class IoHandle;

  struct Round {
    ExtentList accesses;           // iod-local file extents
    core::MemSegmentList mem;      // matching client memory slices
    u64 bytes = 0;
  };
  struct OpState;  // shared per-operation bookkeeping
  // Recovery state of one round across its attempts. Exists when the fault
  // plane is on or the round is a replicated write (whose per-replica fan
  // needs ack bookkeeping even on a healthy run); a null RoundTry means
  // neither applies and the round cannot fail transiently. Shared between
  // the attempt's event chain and the armed timeout timer; `settled` makes
  // late duplicate completions harmless.
  struct RoundTry {
    u64 seq = 0;         // round_seq stamped once, reused on every replay
    u32 attempts = 1;    // attempts started (1 = first try)
    bool settled = false;
    bool timer_armed = false;
    sim::Engine::TimerId timer_id = 0;
    TimePoint first_issue = TimePoint::origin();
    TimePoint last_issue = TimePoint::origin();  // newest attempt's start
    // Read failover: attempts consumed before the latest failover (the
    // retry budget restarts at each new replica) and failovers taken so
    // far (capped at replica-count - 1 per round).
    u32 budget_base = 0;
    u32 failovers = 0;
    // Per-stripe version stamped on a replicated write round (manager-
    // minted in issue_round; 0 otherwise). Replays carry the same version.
    u64 version = 0;
    // Manager epoch `version` was minted under (0 when unversioned). Rides
    // every attempt of the round so iods can fence mints that a manager
    // takeover has since superseded.
    u64 epoch = 0;
    // Replicated-write fan state, indexed by replica position in the
    // chain's replica set: which replicas have acked this round (replays
    // go only to the silent ones) and which already hold the payload in
    // their staging slot (replays to those skip the wire phase).
    std::vector<bool> acked;
    std::vector<bool> data_landed;
    u32 acks = 0;
    bool have_first_ack = false;
    TimePoint first_ack = TimePoint::origin();
  };

  void start_op(const OpenFile& file, const core::ListIoRequest& req,
                const IoOptions& opts, TimePoint start, bool is_write,
                IoCallback done, bool wb_flush = false);

  // --- Caching tier internals -------------------------------------------
  // Serve the read entirely from cached (clean or dirty) extents when they
  // cover it and every clean tag validates against the authority's
  // write-notice seq and stripe-version planes. Completes the op at zero
  // simulated cost and returns true; false = miss, go to the wire.
  bool serve_cached_read(const OpenFile& file, const core::ListIoRequest& req,
                         TimePoint start, const IoCallback& done);
  // Write-back staging: gather the request's bytes from user memory into
  // dirty cache extents, complete immediately, and arm the
  // staleness_bound flush timer for the handle.
  void stage_write_back(const OpenFile& file, const core::ListIoRequest& req,
                        TimePoint start, const IoCallback& done);
  // Start the flush write for `h`'s dirty runs (no-op when none). `done`
  // fires with the flush op's result after flush_applied converted the
  // runs to clean.
  void start_flush(Handle h, IoCallback done);
  // Op-completion cache hooks (round_done's final block): completion-time
  // seq bumps for writes, clean re-insert of the op's bytes, dirty overlay
  // onto a wire-read's user buffer.
  void cache_op_complete(OpState& op);
  // Issue the chain's next round at time `t` (window bookkeeping done).
  void issue_round(std::shared_ptr<OpState> op, u32 iod_idx, TimePoint t);
  // Round k's data phase cleared the wire at `t`: issue round k+1 if the
  // outstanding-round window has room, else record the stall.
  void wire_cleared(std::shared_ptr<OpState> op, u32 iod_idx, TimePoint t);
  // Fan one write attempt out to every not-yet-acked replica of the chain
  // (a single iod when unreplicated).
  void run_write_round(std::shared_ptr<OpState> op, u32 iod_idx,
                       size_t round_idx, TimePoint t0,
                       std::shared_ptr<RoundTry> tr);
  // Drive one write round against replica `rep` of the chain's set.
  void run_write_replica(std::shared_ptr<OpState> op, u32 iod_idx,
                         size_t round_idx, u32 rep, TimePoint t0,
                         std::shared_ptr<RoundTry> tr);
  // Replica `rep` acked the write round at `t` holding stripe version
  // `ack_version`: record the version with the manager (even for late acks
  // after the quorum settled — a slow-but-alive replica is current, not
  // stale) and settle once the write quorum is met (immediately when
  // unreplicated). `attempt_seq` is the round_seq the attempt carried —
  // acks from attempts older than the round's current seq (superseded by a
  // re-mint) are dropped. `epoch_rejected` means the iod fenced the
  // attempt's version as epoch-stale: the round re-mints a fresh
  // version+epoch from the current authority and replays under a fresh
  // seq (pvfs.version_remints) instead of counting the ack.
  void write_replica_done(std::shared_ptr<OpState> op, u32 iod_idx,
                          size_t round_idx, u32 rep,
                          std::shared_ptr<RoundTry> tr, TimePoint t,
                          u64 ack_version, u64 attempt_seq,
                          bool epoch_rejected);
  void run_read_round(std::shared_ptr<OpState> op, u32 iod_idx,
                      size_t round_idx, TimePoint t0,
                      std::shared_ptr<RoundTry> tr);
  // Arm the per-round timeout for the attempt starting at `t`.
  void arm_round_timer(std::shared_ptr<OpState> op, u32 iod_idx,
                       size_t round_idx, std::shared_ptr<RoundTry> tr,
                       TimePoint t);
  // A round completed successfully (or terminally) at `t`: cancel its
  // timer, record recovery stats, and feed round_done. Idempotent per
  // round — late duplicate completions after a replay are ignored.
  void settle_round(std::shared_ptr<OpState> op, u32 iod_idx,
                    size_t round_idx, std::shared_ptr<RoundTry> tr,
                    TimePoint t, Status status);
  // An attempt failed with `why` at `t`: retry with backoff if the error
  // is transient and budget remains, else settle the round terminally.
  void retry_or_fail(std::shared_ptr<OpState> op, u32 iod_idx,
                     size_t round_idx, std::shared_ptr<RoundTry> tr,
                     TimePoint t, Status why);
  // Route a failed attempt: recovery path when `tr` exists, terminal
  // round_done otherwise.
  void fail_round(std::shared_ptr<OpState> op, u32 iod_idx, size_t round_idx,
                  std::shared_ptr<RoundTry> tr, TimePoint t, Status why);
  // A round left the window (settled) at `t`.
  void round_done(std::shared_ptr<OpState> op, u32 iod_idx, size_t round_idx,
                  TimePoint t, Status status);
  static std::vector<Round> split_rounds(const core::ServerSubRequest& sub,
                                         u64 max_pairs, u64 max_bytes);
  bool faulty() const;

  // The physical iod currently serving reads for (or primarying writes of)
  // the chain — replica_sets[iod_idx][chain.replica] under replication,
  // the classic single target otherwise.
  u32 current_target(const OpState& op, u32 iod_idx) const;

  // --- Version plane (replica-aware reads, read-repair) -------------------
  // Starting replica for a replicated read chain: the first replica the
  // manager's staleness map records current (counting a skipped stale
  // primary as pvfs.stale_reads_avoided), tie-broken by the lowest srtt
  // estimate when ReplicationParams::read_bias is on. Position 0 whenever
  // every replica is current — fault-free runs keep serving from the
  // primary, baseline-identical.
  u32 pick_read_replica(const OpState& op, u32 iod_idx);
  // A read round settled OK at `t`, served by the chain's current replica
  // whose stripe header reported `serving_version`: record that with the
  // manager and schedule async repair writes of the round's data to every
  // chain replica whose recorded version trails (pvfs.read_repairs), when
  // ReplicationParams::read_repair allows.
  void maybe_read_repair(std::shared_ptr<OpState> op, u32 iod_idx,
                         size_t round_idx, u64 serving_version, TimePoint t);
  // Gather the round's bytes from client memory now and apply them to
  // replica position `rep` after an analytical pack+wire delay, serialized
  // per target iod (one outstanding repair per target).
  void schedule_repair_write(std::shared_ptr<OpState> op, u32 iod_idx,
                             size_t round_idx, u32 rep, u64 version,
                             TimePoint t);
  // Common tail of every successful read-return path: lost-write check,
  // read-repair bookkeeping, then settle.
  void finish_read_round(std::shared_ptr<OpState> op, u32 iod_idx,
                         size_t round_idx, std::shared_ptr<RoundTry> tr,
                         u64 serving_version, TimePoint t);
  // Lost-write detection: the staleness map records the serving replica as
  // having acked the stripe's latest version, yet its header reports less —
  // the acked write never reached the platter. Downgrades the map to the
  // observed header (pvfs.corruptions_detected), fails the chain over to
  // the next live replica (pvfs.corrupt_reads_failed_over) and re-issues
  // the round; returns true when it did. A replica the map already records
  // stale serves old data without tripping this — that is the legitimate
  // no-resync timeline, not a detection.
  bool lost_write_detected(std::shared_ptr<OpState> op, u32 iod_idx,
                           size_t round_idx, std::shared_ptr<RoundTry> tr,
                           u64 serving_version, TimePoint t);

  // --- Adaptive round timeouts (Jacobson-style per-iod RTT estimation) ---
  struct RttEstimate {
    bool seeded = false;
    Duration srtt = Duration::zero();
    Duration rttvar = Duration::zero();
  };
  // Feed a settled attempt's issue-to-completion time into `iod`'s
  // estimator (only called when FaultConfig::adaptive_timeout is on).
  void note_rtt(u32 iod_id, Duration sample);
  // Timeout for one iod: srtt + var_mult * rttvar, clamped; the static
  // round_timeout until seeded or when adaptive timeouts are off.
  Duration iod_timeout(u32 iod_id) const;
  // Timeout for a round attempt: the (single) read target's timeout, or
  // the max over a replicated write's fan so a slow backup is not declared
  // dead by a fast primary's estimate.
  Duration round_timeout_for(const OpState& op, u32 iod_idx) const;

  // Run one typed metadata request through MetaClient::call starting at
  // the client's logical clock, then advance the clock past the reply (or
  // the final timeout when every retry failed).
  MetaReply meta_roundtrip(const MetaRequest& rq);

  u32 id_;
  ModelConfig cfg_;
  sim::Engine& engine_;
  ib::Fabric& fabric_;
  std::vector<Iod*> iods_;
  Stats* stats_;
  fault::Injector* faults_;
  std::optional<core::TransferPolicy> default_policy_;
  // Next round_seq to stamp (client-wide counter; strictly increasing, so
  // every (client, slot) subsequence is strictly increasing too). Shared
  // across replicas of a fanned-out write round: each iod keeps its own
  // high-water mark, so one sequence number dedupes replays everywhere.
  u64 next_round_seq_ = 1;
  std::vector<RttEstimate> rtt_;  // per physical iod
  // Async repair writes are serialized per target iod: the next repair to
  // a target starts when the previous one arrived (background traffic,
  // one outstanding chunk per target).
  std::map<u32, TimePoint> repair_busy_until_;

  vmem::AddressSpace as_;
  ib::Hca hca_;
  ib::MrCache cache_;
  core::GroupRegistrar registrar_;
  core::NoncontigTransfer xfer_;
  // Metadata routing facade: cached shard map + retry/redirect machinery.
  // Declared after hca_ (it labels traces and sources requests with it).
  MetaClient meta_;
  // Client caching tier (attr + data). Distinct from cache_ — that is the
  // HCA's memory-registration pin-down cache.
  cache::ClientCache ccache_;
  // Write-back bookkeeping: file meta snapshot per handle with dirty
  // extents (the flush write needs stripe geometry), and whether the
  // staleness_bound flush timer is armed for the handle.
  std::map<Handle, FileMeta> wb_files_;
  std::map<Handle, bool> wb_timer_armed_;
  core::TransferEndpoint ep_;  // bounce buffer endpoint
  TimePoint now_ = TimePoint::origin();
};

}  // namespace pvfsib::pvfs
