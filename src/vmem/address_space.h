// Per-process virtual address space model.
//
// InfiniBand memory registration pins *pages*; whether a page can be pinned
// depends on whether the process has actually mapped it. Optimistic Group
// Registration's whole point is handling unallocated "holes" between list
// I/O buffers, so the simulation needs a faithful page-granular allocation
// map plus the OS services the paper uses: failing registration on
// unallocated pages, and querying true allocation extents (the custom
// kernel syscall vs reading /proc/$pid/maps).
//
// Allocations carry real backing bytes (one flat arena indexed by virtual
// address) so that RDMA operations move actual data and end-to-end tests can
// verify byte-exact results.
#pragma once

#include <cstring>
#include <map>
#include <span>
#include <vector>

#include "common/extent.h"
#include "common/status.h"
#include "common/types.h"

namespace pvfsib::vmem {

class AddressSpace {
 public:
  // Virtual addresses start well above zero so that 0 can mean "null".
  static constexpr u64 kBaseVaddr = 0x10000;

  AddressSpace() = default;
  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  // mmap-like allocation: page-aligned, page-granular. Returns the vaddr.
  u64 alloc(u64 bytes);

  // Advance the allocation cursor without mapping — creates a permanent
  // unallocated hole (used to model distinct malloc arenas / guard gaps).
  void skip(u64 bytes);

  // Map a specific range (page-rounded). Fails if any page is already
  // mapped or the range precedes the base address.
  Status alloc_at(u64 vaddr, u64 bytes);

  // Unmap a previous allocation made at exactly `vaddr`.
  Status free_at(u64 vaddr);

  // True when every page of [addr, addr+len) is mapped.
  bool range_allocated(u64 addr, u64 len) const;

  // The OS hole-query service: mapped extents intersecting `span`, sorted.
  // The *cost* of the query is charged by the caller from OsParams using
  // the returned list's size (the syscall walks one vm_area per extent).
  ExtentList allocated_within(const Extent& span) const;

  // All mapped extents (for diagnostics/tests).
  ExtentList allocated_extents() const;

  u64 bytes_mapped() const;

  // --- Backing data access -------------------------------------------------
  // Unchecked raw access; `addr` need not be mapped (holes are readable
  // garbage, as on a real machine they'd fault — asserts in debug builds
  // guard the mapped paths that matter).
  std::byte* data(u64 addr);
  const std::byte* data(u64 addr) const;

  std::span<std::byte> writable_span(u64 addr, u64 len);
  std::span<const std::byte> readable_span(u64 addr, u64 len) const;

  // Convenience typed accessors for tests/workloads.
  template <typename T>
  T read_pod(u64 addr) const {
    T v;
    std::memcpy(&v, data(addr), sizeof(T));
    return v;
  }
  template <typename T>
  void write_pod(u64 addr, const T& v) {
    std::memcpy(data(addr), &v, sizeof(T));
  }

 private:
  void ensure_backing(u64 end_addr);
  // Insert [start,len) into the allocation map, merging neighbours.
  void insert_extent(u64 start, u64 len);

  // Mapped extents: start -> length, page-granular, disjoint, merged.
  std::map<u64, u64> mapped_;
  // Original allocations (for free_at): start -> page-rounded length.
  std::map<u64, u64> allocations_;
  u64 cursor_ = kBaseVaddr;
  std::vector<std::byte> backing_;  // index = vaddr - kBaseVaddr
};

}  // namespace pvfsib::vmem
