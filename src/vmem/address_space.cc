#include "vmem/address_space.h"

#include <cassert>
#include <cstring>

namespace pvfsib::vmem {

u64 AddressSpace::alloc(u64 bytes) {
  assert(bytes > 0);
  const u64 start = page_ceil(cursor_);
  const u64 len = page_ceil(bytes);
  cursor_ = start + len;
  ensure_backing(cursor_);
  insert_extent(start, len);
  allocations_[start] = len;
  return start;
}

void AddressSpace::skip(u64 bytes) { cursor_ = page_ceil(cursor_ + bytes); }

Status AddressSpace::alloc_at(u64 vaddr, u64 bytes) {
  if (vaddr < kBaseVaddr) {
    return invalid_argument("alloc_at below base address");
  }
  if (vaddr != page_floor(vaddr)) {
    return invalid_argument("alloc_at requires page-aligned vaddr");
  }
  const u64 len = page_ceil(bytes);
  // Reject overlap with any mapped page.
  auto it = mapped_.upper_bound(vaddr);
  if (it != mapped_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second > vaddr) {
      return already_exists("range overlaps existing mapping");
    }
  }
  if (it != mapped_.end() && it->first < vaddr + len) {
    return already_exists("range overlaps existing mapping");
  }
  cursor_ = std::max(cursor_, vaddr + len);
  ensure_backing(vaddr + len);
  insert_extent(vaddr, len);
  allocations_[vaddr] = len;
  return Status::ok();
}

Status AddressSpace::free_at(u64 vaddr) {
  auto it = allocations_.find(vaddr);
  if (it == allocations_.end()) {
    return not_found("no allocation at this address");
  }
  const u64 len = it->second;
  allocations_.erase(it);

  // Carve [vaddr, vaddr+len) out of the mapped extents.
  auto m = mapped_.upper_bound(vaddr);
  if (m != mapped_.begin()) --m;
  while (m != mapped_.end() && m->first < vaddr + len) {
    const u64 mstart = m->first;
    const u64 mlen = m->second;
    const u64 mend = mstart + mlen;
    if (mend <= vaddr) {
      ++m;
      continue;
    }
    m = mapped_.erase(m);
    if (mstart < vaddr) mapped_[mstart] = vaddr - mstart;
    if (mend > vaddr + len) {
      mapped_[vaddr + len] = mend - (vaddr + len);
      m = mapped_.find(vaddr + len);
    }
  }
  return Status::ok();
}

bool AddressSpace::range_allocated(u64 addr, u64 len) const {
  if (len == 0) return true;
  const u64 lo = page_floor(addr);
  const u64 hi = page_ceil(addr + len);
  auto it = mapped_.upper_bound(lo);
  if (it == mapped_.begin()) return false;
  --it;
  // Extents are merged, so a single extent must cover the whole page range.
  return it->first <= lo && it->first + it->second >= hi;
}

ExtentList AddressSpace::allocated_within(const Extent& span) const {
  ExtentList out;
  if (span.empty()) return out;
  auto it = mapped_.upper_bound(span.offset);
  if (it != mapped_.begin()) --it;
  for (; it != mapped_.end() && it->first < span.end(); ++it) {
    const u64 lo = std::max(span.offset, it->first);
    const u64 hi = std::min(span.end(), it->first + it->second);
    if (lo < hi) out.push_back({lo, hi - lo});
  }
  return out;
}

ExtentList AddressSpace::allocated_extents() const {
  ExtentList out;
  out.reserve(mapped_.size());
  for (const auto& [start, len] : mapped_) out.push_back({start, len});
  return out;
}

u64 AddressSpace::bytes_mapped() const {
  u64 sum = 0;
  for (const auto& [start, len] : mapped_) sum += len;
  return sum;
}

std::byte* AddressSpace::data(u64 addr) {
  assert(addr >= kBaseVaddr);
  ensure_backing(addr + 1);
  return backing_.data() + (addr - kBaseVaddr);
}

const std::byte* AddressSpace::data(u64 addr) const {
  assert(addr >= kBaseVaddr);
  assert(addr - kBaseVaddr < backing_.size());
  return backing_.data() + (addr - kBaseVaddr);
}

std::span<std::byte> AddressSpace::writable_span(u64 addr, u64 len) {
  ensure_backing(addr + len);
  return {data(addr), len};
}

std::span<const std::byte> AddressSpace::readable_span(u64 addr,
                                                       u64 len) const {
  assert(addr + len - kBaseVaddr <= backing_.size());
  return {data(addr), len};
}

void AddressSpace::ensure_backing(u64 end_addr) {
  const u64 need = end_addr - kBaseVaddr;
  if (backing_.size() < need) {
    // Grow geometrically to keep amortized cost linear.
    backing_.resize(std::max(need, backing_.size() + backing_.size() / 2));
  }
}

void AddressSpace::insert_extent(u64 start, u64 len) {
  u64 lo = start;
  u64 hi = start + len;
  // Merge with predecessor if touching/overlapping.
  auto it = mapped_.upper_bound(lo);
  if (it != mapped_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second >= lo) {
      lo = prev->first;
      hi = std::max(hi, prev->first + prev->second);
      mapped_.erase(prev);
    }
  }
  // Merge with successors.
  it = mapped_.lower_bound(lo);
  while (it != mapped_.end() && it->first <= hi) {
    hi = std::max(hi, it->first + it->second);
    it = mapped_.erase(it);
  }
  mapped_[lo] = hi - lo;
}

}  // namespace pvfsib::vmem
